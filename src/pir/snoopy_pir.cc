#include "src/pir/snoopy_pir.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

SnoopyPir::SnoopyPir(const SnoopyPirConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("Snoopy-PIR needs at least one shard");
  }
  LoadBalancerConfig lbc;
  lbc.num_suborams = config_.num_shards;
  lbc.value_size = config_.value_size;
  lbc.lambda = config_.lambda;
  lb_ = std::make_unique<LoadBalancer>(lbc, rng_.NextSipKey(), rng_.Next64());
  servers_a_.resize(config_.num_shards);
  servers_b_.resize(config_.num_shards);
  shard_index_.resize(config_.num_shards);
}

void SnoopyPir::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  const size_t stride = 8 + config_.value_size;
  std::vector<ByteSlab> shards(config_.num_shards, ByteSlab(0, stride));
  for (const auto& [key, value] : objects) {
    if (key >= kDummyKeyBase) {
      throw std::invalid_argument("object keys must be below 2^63");
    }
    const uint32_t shard = lb_->SubOramOf(key);
    shard_index_[shard][key] = shards[shard].size();
    uint8_t* rec = shards[shard].AppendZero();
    std::memcpy(rec, &key, 8);
    const size_t n = value.size() < config_.value_size ? value.size() : config_.value_size;
    std::memcpy(rec + 8, value.data(), n);
  }
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    // Replicate the shard database onto the two non-colluding servers.
    ByteSlab copy = shards[s];
    servers_a_[s] = std::make_unique<XorPirServer>(std::move(shards[s]));
    servers_b_[s] = std::make_unique<XorPirServer>(std::move(copy));
  }
}

std::vector<SnoopyPir::Result> SnoopyPir::LookupBatch(const std::vector<uint64_t>& keys) {
  ++epochs_;
  // Stage 1: the standard oblivious load-balancer pipeline (dedup + pad + sort +
  // compact) produces one equal-sized batch per shard.
  RequestBatch requests(config_.value_size);
  for (size_t i = 0; i < keys.size(); ++i) {
    RequestHeader h;
    h.key = keys[i];
    h.op = kOpRead;
    h.client_seq = i;
    requests.Append(h, {});
  }
  LoadBalancer::PreparedEpoch epoch = lb_->PrepareBatches(std::move(requests));

  // Stage 2: per shard, turn the batch into PIR query pairs and answer with one scan
  // per server. Dummy requests (and absent keys) query a random position -- the
  // servers cannot tell.
  std::vector<RequestBatch> responses;
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    RequestBatch& batch = epoch.suboram_batches[s];
    const size_t db = servers_a_[s]->num_records();
    RequestBatch shard_resp(config_.value_size);
    if (db == 0) {
      for (size_t i = 0; i < batch.size(); ++i) {
        RequestHeader h = batch.Header(i);
        h.resp = 1;
        shard_resp.Append(h, {});
      }
      responses.push_back(std::move(shard_resp));
      continue;
    }
    std::vector<BitVector> queries_a;
    std::vector<BitVector> queries_b;
    std::vector<bool> is_real;
    for (size_t i = 0; i < batch.size(); ++i) {
      const uint64_t key = batch.Header(i).key;
      const auto it = shard_index_[s].find(key);
      const size_t index = it == shard_index_[s].end() ? rng_.Uniform(db) : it->second;
      PirQueryPair pair = MakePirQuery(db, index, rng_);
      queries_a.push_back(std::move(pair.for_a));
      queries_b.push_back(std::move(pair.for_b));
      is_real.push_back(it != shard_index_[s].end());
    }
    const auto ans_a = servers_a_[s]->Answer(queries_a);
    const auto ans_b = servers_b_[s]->Answer(queries_b);
    for (size_t i = 0; i < batch.size(); ++i) {
      const std::vector<uint8_t> record = CombinePirAnswers(ans_a[i], ans_b[i]);
      RequestHeader h = batch.Header(i);
      h.resp = 1;
      h.granted = is_real[i] ? 1 : 0;  // reuse: marks "found" for absent keys
      if (is_real[i]) {
        shard_resp.Append(h, std::span<const uint8_t>(record.data() + 8,
                                                      config_.value_size));
      } else {
        shard_resp.Append(h, {});
      }
    }
    responses.push_back(std::move(shard_resp));
  }

  // Stage 3: match responses back to the original requests (Figure 6 pipeline).
  // Temporarily mark originals granted so the access-control nulling stays inert.
  RequestBatch matched = lb_->MatchResponses(std::move(epoch), std::move(responses));
  std::vector<Result> results(matched.size());
  for (size_t i = 0; i < matched.size(); ++i) {
    const RequestHeader& h = matched.Header(i);
    Result& r = results[h.client_seq];
    r.key = h.key;
    r.value.assign(matched.Value(i), matched.Value(i) + config_.value_size);
    r.found = false;
    for (const uint8_t b : r.value) {
      r.found = r.found || b != 0;
    }
    // A present key with an all-zero value still counts as found.
    const uint32_t shard = lb_->SubOramOf(h.key);
    r.found = r.found || shard_index_[shard].count(h.key) != 0;
  }
  return results;
}

uint64_t SnoopyPir::total_server_scans() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    if (servers_a_[s] != nullptr) {
      total += servers_a_[s]->scans_performed() + servers_b_[s]->scans_performed();
    }
  }
  return total;
}

}  // namespace snoopy
