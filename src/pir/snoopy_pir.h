// Snoopy-PIR (paper section 9): the Snoopy load-balancer pipeline with PIR server
// pairs in place of enclave subORAMs.
//
// The load balancer still assembles equal-sized, deduplicated, padded batches per
// shard -- that is what hides *which shard* holds each requested object, the part PIR
// alone cannot hide. Each shard is then served by two non-colluding XOR-PIR servers,
// and the whole per-shard batch is answered with one database scan per server (batch
// PIR). Read-only, as PIR fundamentally is.

#ifndef SNOOPY_SRC_PIR_SNOOPY_PIR_H_
#define SNOOPY_SRC_PIR_SNOOPY_PIR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/load_balancer.h"
#include "src/pir/xor_pir.h"

namespace snoopy {

struct SnoopyPirConfig {
  uint32_t num_shards = 1;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
};

class SnoopyPir {
 public:
  SnoopyPir(const SnoopyPirConfig& config, uint64_t seed);

  // Loads the object store; each shard's database is replicated onto its server pair.
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  struct Result {
    uint64_t key = 0;
    bool found = false;
    std::vector<uint8_t> value;
  };

  // One epoch of private reads: deduplicated, padded to f(R, S) per shard, answered
  // with one PIR scan per (shard, server). Unknown keys come back found = false.
  std::vector<Result> LookupBatch(const std::vector<uint64_t>& keys);

  // Server-side scans performed so far (the PIR cost unit; 2 per shard per epoch).
  uint64_t total_server_scans() const;
  uint32_t ShardOf(uint64_t key) const { return lb_->SubOramOf(key); }
  uint64_t batches_processed() const { return epochs_; }

 private:
  SnoopyPirConfig config_;
  Rng rng_;
  std::unique_ptr<LoadBalancer> lb_;
  // Per shard: the replicated server pair plus the (public-to-the-balancer) key ->
  // position index used to form queries.
  std::vector<std::unique_ptr<XorPirServer>> servers_a_;
  std::vector<std::unique_ptr<XorPirServer>> servers_b_;
  std::vector<std::map<uint64_t, size_t>> shard_index_;
  uint64_t epochs_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_PIR_SNOOPY_PIR_H_
