#include "src/oram/position_map.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

RecursivePathOram::RecursivePathOram(const RecursivePathOramConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.num_blocks == 0 || config_.entries_per_block == 0) {
    throw std::invalid_argument("invalid recursive Path ORAM configuration");
  }
  uint64_t n = config_.num_blocks;
  size_t block_size = config_.block_size;
  while (true) {
    PathOramConfig poc;
    poc.num_blocks = n;
    poc.block_size = block_size;
    poc.bucket_capacity = config_.bucket_capacity;
    orams_.push_back(std::make_unique<PathOram>(poc, rng_.Next64()));
    if (n <= config_.flat_threshold) {
      break;
    }
    n = (n + config_.entries_per_block - 1) / config_.entries_per_block;
    block_size = 8 * config_.entries_per_block;  // a block of packed leaf values
  }
  // The deepest level's positions live in (simulated) enclave memory. Start at the
  // ORAMs' own initial assignments so the chain is consistent from the first access.
  flat_map_.resize(orams_.back()->num_blocks());
  for (uint64_t i = 0; i < flat_map_.size(); ++i) {
    flat_map_[i] = rng_.Uniform(orams_.back()->num_leaves());
  }
  // Lazy tree initialization: blocks absent from a tree read as zero, so every
  // position-map entry starts as "leaf 0"; since absent data blocks also read as zero
  // regardless of the path searched, the zero state is consistent (see tests).
}

uint64_t RecursivePathOram::SwapPosition(uint32_t level, uint64_t addr, uint64_t new_leaf) {
  const uint32_t next = level + 1;
  if (next == orams_.size()) {
    // Deepest level: the flat in-enclave map.
    const uint64_t old = flat_map_[addr];
    flat_map_[addr] = new_leaf;
    return old;
  }
  // The position of level-`level` block `addr` is entry (addr % C) of map block
  // (addr / C) at level `next`. Fetch-and-update that map block with one access.
  const uint64_t c = config_.entries_per_block;
  const uint64_t map_addr = addr / c;
  const uint64_t entry = addr % c;
  PathOram& map_oram = *orams_[next];
  const uint64_t map_new_leaf = rng_.Uniform(map_oram.num_leaves());
  const uint64_t map_leaf = SwapPosition(next, map_addr, map_new_leaf);

  // Read-modify-write the map block along the path we just resolved.
  std::vector<uint8_t> block = map_oram.AccessAt(map_addr, map_leaf, map_new_leaf, nullptr);
  uint64_t old = 0;
  std::memcpy(&old, block.data() + 8 * entry, 8);
  std::memcpy(block.data() + 8 * entry, &new_leaf, 8);
  map_oram.AccessAt(map_addr, map_new_leaf, map_new_leaf, &block);
  return old;
}

std::vector<uint8_t> RecursivePathOram::Access(uint64_t addr,
                                               const std::vector<uint8_t>* new_data) {
  if (addr >= config_.num_blocks) {
    throw std::out_of_range("recursive Path ORAM address out of range");
  }
  PathOram& data_oram = *orams_[0];
  const uint64_t new_leaf = rng_.Uniform(data_oram.num_leaves());
  const uint64_t leaf = SwapPosition(0, addr, new_leaf);
  return data_oram.AccessAt(addr, leaf, new_leaf, new_data);
}

uint64_t RecursivePathOram::blocks_moved() const {
  uint64_t total = 0;
  for (const auto& oram : orams_) {
    total += oram->blocks_moved();
  }
  return total;
}

size_t RecursivePathOram::max_stash_seen() const {
  size_t m = 0;
  for (const auto& oram : orams_) {
    m = m < oram->max_stash_seen() ? oram->max_stash_seen() : m;
  }
  return m;
}

}  // namespace snoopy
