#include "src/oram/ring_oram.h"

#include <algorithm>
#include <stdexcept>

namespace snoopy {

RingOram::RingOram(const RingOramConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.num_blocks == 0 || config_.z == 0 || config_.s == 0) {
    throw std::invalid_argument("invalid Ring ORAM configuration");
  }
  levels_ = 1;
  while ((uint64_t{1} << (levels_ - 1)) < config_.num_blocks) {
    ++levels_;
  }
  num_leaves_ = uint64_t{1} << (levels_ - 1);
  buckets_.resize((uint64_t{1} << levels_) - 1);
  for (Bucket& bucket : buckets_) {
    bucket.slots.resize(config_.z + config_.s);
    for (uint32_t i = 0; i < config_.s; ++i) {
      bucket.slots[config_.z + i].valid = true;  // fresh dummies
    }
  }
  position_.resize(config_.num_blocks);
  for (uint64_t a = 0; a < config_.num_blocks; ++a) {
    position_[a] = rng_.Uniform(num_leaves_);
  }
}

uint64_t RingOram::BucketIndex(uint64_t leaf, uint32_t level) const {
  return ((num_leaves_ + leaf) >> (levels_ - 1 - level)) - 1;
}

uint64_t RingOram::ReverseBits(uint64_t v, uint32_t bits) const {
  uint64_t r = 0;
  for (uint32_t i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1);
  }
  return r;
}

void RingOram::ReadPath(uint64_t leaf, uint64_t addr) {
  for (uint32_t level = 0; level < levels_; ++level) {
    const uint64_t bi = BucketIndex(leaf, level);
    Bucket& bucket = buckets_[bi];
    // A bucket out of fresh dummies must be reshuffled before it can serve a read.
    const bool has_valid_dummy = std::any_of(
        bucket.slots.begin(), bucket.slots.end(),
        [](const Slot& s) { return !s.real && s.valid; });
    if (!has_valid_dummy) {
      ReshuffleBucket(bi);
    }
    // Read exactly one slot: the valid real block if this bucket holds `addr`,
    // otherwise a fresh dummy (the server cannot tell which case occurred).
    Slot* hit = nullptr;
    for (Slot& s : bucket.slots) {
      if (s.real && s.valid && s.addr == addr) {
        hit = &s;
        break;
      }
    }
    ++slots_read_;
    ++bucket.reads_since_shuffle;
    if (hit != nullptr) {
      stash_.push_back(StashBlock{hit->addr, hit->leaf, std::move(hit->data)});
      hit->real = false;
      hit->valid = false;  // the slot was consumed
    } else {
      for (Slot& s : bucket.slots) {
        if (!s.real && s.valid) {
          s.valid = false;  // consume one dummy
          break;
        }
      }
    }
    if (bucket.reads_since_shuffle >= config_.s) {
      ReshuffleBucket(bi);
      ++early_reshuffles_;
    }
  }
}

void RingOram::ReshuffleBucket(uint64_t bucket_index) {
  Bucket& bucket = buckets_[bucket_index];
  // Pull the remaining real blocks into the stash, rebuild the bucket with fresh
  // dummies. (The write-back happens at the next eviction touching this subtree; the
  // real protocol reshuffles in place -- the stash detour is functionally equivalent
  // and keeps the code single-sourced with eviction.)
  for (Slot& s : bucket.slots) {
    if (s.real && s.valid) {
      stash_.push_back(StashBlock{s.addr, s.leaf, std::move(s.data)});
    }
    s.real = false;
    s.valid = true;  // becomes a fresh dummy slot
  }
  bucket.reads_since_shuffle = 0;
  max_stash_ = std::max(max_stash_, stash_.size());
}

void RingOram::EvictPath() {
  ++evictions_;
  const uint64_t leaf = ReverseBits(evict_counter_ % num_leaves_, levels_ - 1);
  ++evict_counter_;

  // Read all remaining real blocks on the path into the stash.
  for (uint32_t level = 0; level < levels_; ++level) {
    Bucket& bucket = buckets_[BucketIndex(leaf, level)];
    for (Slot& s : bucket.slots) {
      if (s.real && s.valid) {
        stash_.push_back(StashBlock{s.addr, s.leaf, std::move(s.data)});
      }
      s.real = false;
      s.valid = true;
    }
    bucket.reads_since_shuffle = 0;
  }

  // Greedy write-back, deepest level first, up to Z real blocks per bucket.
  for (uint32_t level = levels_; level-- > 0;) {
    Bucket& bucket = buckets_[BucketIndex(leaf, level)];
    uint32_t placed = 0;
    for (size_t i = 0; i < stash_.size() && placed < config_.z;) {
      if (BucketIndex(stash_[i].leaf, level) == BucketIndex(leaf, level)) {
        Slot& s = bucket.slots[placed];
        s.real = true;
        s.valid = true;
        s.addr = stash_[i].addr;
        s.leaf = stash_[i].leaf;
        s.data = std::move(stash_[i].data);
        stash_[i] = std::move(stash_.back());
        stash_.pop_back();
        ++placed;
      } else {
        ++i;
      }
    }
  }
  max_stash_ = std::max(max_stash_, stash_.size());
}

std::vector<uint8_t> RingOram::Access(uint64_t addr, const std::vector<uint8_t>* new_data) {
  if (addr >= config_.num_blocks) {
    throw std::out_of_range("Ring ORAM address out of range");
  }
  ++accesses_;
  const uint64_t leaf = position_[addr];
  position_[addr] = rng_.Uniform(num_leaves_);
  ReadPath(leaf, addr);

  // Serve from the stash (the block is either freshly read or was already there).
  std::vector<uint8_t> result(config_.block_size, 0);
  StashBlock* target = nullptr;
  for (StashBlock& b : stash_) {
    if (b.addr == addr) {
      target = &b;
      break;
    }
  }
  if (target == nullptr) {
    stash_.push_back(
        StashBlock{addr, position_[addr], std::vector<uint8_t>(config_.block_size, 0)});
    target = &stash_.back();
  }
  result = target->data;
  result.resize(config_.block_size, 0);
  target->leaf = position_[addr];
  if (new_data != nullptr) {
    target->data = *new_data;
    target->data.resize(config_.block_size, 0);
  }
  max_stash_ = std::max(max_stash_, stash_.size());

  if (++round_ >= config_.evict_rate) {
    round_ = 0;
    EvictPath();
  }
  return result;
}

}  // namespace snoopy
