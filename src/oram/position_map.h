// Recursive Path ORAM: the position map is itself stored in a chain of smaller Path
// ORAMs, as in the original construction and as deployed by Oblix (paper section 8.1:
// "simulate the overhead of recursively storing the position map").
//
// Level 0 is the data ORAM over N blocks. Level i > 0 stores the positions of level
// i-1's blocks, packed kEntriesPerBlock to a block, until the map fits in enclave
// memory (kFlatThreshold), where it is kept flat. One logical access therefore costs
// one path per level -- the recursion-depth steps visible in the paper's Figure 10
// (Snoopy-Oblix throughput jumps when a recursion level disappears).

#ifndef SNOOPY_SRC_ORAM_POSITION_MAP_H_
#define SNOOPY_SRC_ORAM_POSITION_MAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/oram/path_oram.h"

namespace snoopy {

struct RecursivePathOramConfig {
  uint64_t num_blocks = 0;
  size_t block_size = 160;
  uint32_t bucket_capacity = 4;
  uint32_t entries_per_block = 16;   // position-map fan-out per recursion level
  uint64_t flat_threshold = 128;     // keep maps at most this large in enclave memory
};

class RecursivePathOram {
 public:
  RecursivePathOram(const RecursivePathOramConfig& config, uint64_t seed);

  std::vector<uint8_t> Access(uint64_t addr, const std::vector<uint8_t>* new_data);
  std::vector<uint8_t> Read(uint64_t addr) { return Access(addr, nullptr); }
  void Write(uint64_t addr, const std::vector<uint8_t>& data) { Access(addr, &data); }

  uint32_t recursion_depth() const { return static_cast<uint32_t>(orams_.size()); }
  uint64_t num_blocks() const { return config_.num_blocks; }
  // Total blocks moved across all levels (the cost model's bandwidth unit).
  uint64_t blocks_moved() const;
  size_t max_stash_seen() const;

 private:
  // Reads-and-replaces the position of `addr` at recursion level `level` (level 0 =
  // data ORAM): returns the current leaf and installs `new_leaf` in its place,
  // recursing into level+1 to locate the map block.
  uint64_t SwapPosition(uint32_t level, uint64_t addr, uint64_t new_leaf);

  RecursivePathOramConfig config_;
  Rng rng_;
  // orams_[0] = data ORAM; orams_[i] = position-map ORAM for level i-1.
  std::vector<std::unique_ptr<PathOram>> orams_;
  std::vector<uint64_t> flat_map_;  // positions for the deepest level's blocks
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ORAM_POSITION_MAP_H_
