// Ring ORAM (Ren et al., USENIX Security'15): the tree ORAM Obladi parallelizes and
// batches over (paper section 8.1).
//
// Ring ORAM decouples reads from evictions: a read touches *one* slot per bucket on
// the path (the real block if present, a fresh dummy otherwise), and full-path
// evictions happen only every A accesses, in reverse-lexicographic leaf order. Buckets
// hold Z real slots plus S dummy slots; a bucket whose dummies are exhausted is
// reshuffled early. Per-access online bandwidth is ~1 block per level instead of
// Path ORAM's Z -- the property that makes Obladi's batching profitable.
//
// As with Path ORAM, this is the functional client logic; bucket metadata handling
// that a deployment would push to the server is kept in-process, and the statistics
// (slots read, evictions, reshuffles) are what the cluster cost model prices.

#ifndef SNOOPY_SRC_ORAM_RING_ORAM_H_
#define SNOOPY_SRC_ORAM_RING_ORAM_H_

#include <cstdint>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {

struct RingOramConfig {
  uint64_t num_blocks = 0;
  size_t block_size = 160;
  uint32_t z = 4;           // real slots per bucket
  uint32_t s = 6;           // dummy slots per bucket
  uint32_t evict_rate = 3;  // A: one EvictPath every A accesses
};

class RingOram {
 public:
  RingOram(const RingOramConfig& config, uint64_t seed);

  // Reads block `addr`; if `new_data` is non-null installs it (returns prior value).
  std::vector<uint8_t> Access(uint64_t addr, const std::vector<uint8_t>* new_data);
  std::vector<uint8_t> Read(uint64_t addr) { return Access(addr, nullptr); }
  void Write(uint64_t addr, const std::vector<uint8_t>& data) { Access(addr, &data); }

  uint64_t num_blocks() const { return config_.num_blocks; }
  uint32_t tree_levels() const { return levels_; }
  size_t stash_size() const { return stash_.size(); }
  size_t max_stash_seen() const { return max_stash_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t slots_read() const { return slots_read_; }    // online bandwidth units
  uint64_t evictions() const { return evictions_; }
  uint64_t early_reshuffles() const { return early_reshuffles_; }

 private:
  struct Slot {
    bool real = false;   // real block vs dummy
    bool valid = false;  // unread since last shuffle
    uint64_t addr = 0;
    uint64_t leaf = 0;
    std::vector<uint8_t> data;
  };
  struct Bucket {
    std::vector<Slot> slots;
    uint32_t reads_since_shuffle = 0;
  };
  struct StashBlock {
    uint64_t addr;
    uint64_t leaf;
    std::vector<uint8_t> data;
  };

  uint64_t BucketIndex(uint64_t leaf, uint32_t level) const;
  void ReadPath(uint64_t leaf, uint64_t addr);
  void EvictPath();
  void ReshuffleBucket(uint64_t bucket_index);
  uint64_t ReverseBits(uint64_t v, uint32_t bits) const;

  RingOramConfig config_;
  Rng rng_;
  uint32_t levels_;
  uint64_t num_leaves_;
  std::vector<Bucket> buckets_;
  std::vector<uint64_t> position_;
  std::vector<StashBlock> stash_;
  uint64_t evict_counter_ = 0;  // reverse-lex eviction cursor (g)
  uint64_t round_ = 0;          // accesses since last EvictPath
  size_t max_stash_ = 0;
  uint64_t accesses_ = 0;
  uint64_t slots_read_ = 0;
  uint64_t evictions_ = 0;
  uint64_t early_reshuffles_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ORAM_RING_ORAM_H_
