// Path ORAM (Stefanov et al., CCS'13): the tree-based ORAM underlying the Oblix
// baseline (paper section 8.1) and, indirectly, Obladi's Ring ORAM ancestor.
//
// Standard construction: a binary tree of Z-slot buckets, a position map assigning
// every block a uniformly random leaf, and a stash. Each access reads one root-to-leaf
// path, remaps the block, and greedily writes the path back. Per-access cost is
// O(Z log N) blocks -- the polylogarithmic baseline Snoopy's linear-scan subORAM is
// compared against.
//
// This implementation is the *client logic* that would run inside the enclave. The
// doubly-oblivious hardening Oblix adds (oblivious stash/posmap access) multiplies
// constants but not the asymptotics; the cluster cost model accounts for it (see
// sim/cost_model.h). Functional correctness here is what the baselines' results rest
// on, and it is tested against a reference map.

#ifndef SNOOPY_SRC_ORAM_PATH_ORAM_H_
#define SNOOPY_SRC_ORAM_PATH_ORAM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {

struct PathOramConfig {
  uint64_t num_blocks = 0;
  size_t block_size = 160;
  uint32_t bucket_capacity = 4;  // Z
};

class PathOram {
 public:
  PathOram(const PathOramConfig& config, uint64_t seed);

  // Reads block `addr`; if `new_data` is non-null, installs it after reading (the
  // returned value is the previous content). Addresses must be < num_blocks.
  std::vector<uint8_t> Access(uint64_t addr, const std::vector<uint8_t>* new_data);

  // Externally-managed-position variant used by the recursive construction: the caller
  // supplies the block's current leaf and the fresh leaf it must move to.
  std::vector<uint8_t> AccessAt(uint64_t addr, uint64_t leaf, uint64_t new_leaf,
                                const std::vector<uint8_t>* new_data);

  std::vector<uint8_t> Read(uint64_t addr) { return Access(addr, nullptr); }
  void Write(uint64_t addr, const std::vector<uint8_t>& data) { Access(addr, &data); }

  uint64_t num_leaves() const { return num_leaves_; }

  uint64_t num_blocks() const { return config_.num_blocks; }
  uint32_t tree_levels() const { return levels_; }
  size_t stash_size() const { return stash_.size(); }
  size_t max_stash_seen() const { return max_stash_; }
  uint64_t accesses() const { return accesses_; }
  // Total blocks moved (read + written) so far; the unit the cost model prices.
  uint64_t blocks_moved() const { return blocks_moved_; }

 private:
  struct Block {
    uint64_t addr;
    uint64_t leaf;
    std::vector<uint8_t> data;
  };

  uint64_t BucketIndex(uint64_t leaf, uint32_t level) const;
  bool PathContains(uint64_t leaf, uint32_t level, uint64_t bucket_leaf) const;

  PathOramConfig config_;
  Rng rng_;
  uint32_t levels_;      // tree has `levels_` levels; 2^(levels_-1) leaves
  uint64_t num_leaves_;
  std::vector<std::vector<Block>> buckets_;  // bucket index -> up to Z blocks
  std::vector<uint64_t> position_;           // addr -> leaf
  std::vector<Block> stash_;
  size_t max_stash_ = 0;
  uint64_t accesses_ = 0;
  uint64_t blocks_moved_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ORAM_PATH_ORAM_H_
