#include "src/oram/path_oram.h"

#include <algorithm>
#include <stdexcept>

namespace snoopy {

PathOram::PathOram(const PathOramConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.num_blocks == 0) {
    throw std::invalid_argument("Path ORAM needs at least one block");
  }
  levels_ = 1;
  while ((uint64_t{1} << (levels_ - 1)) < config_.num_blocks) {
    ++levels_;
  }
  num_leaves_ = uint64_t{1} << (levels_ - 1);
  buckets_.resize((uint64_t{1} << levels_) - 1);
  position_.resize(config_.num_blocks);
  for (uint64_t a = 0; a < config_.num_blocks; ++a) {
    position_[a] = rng_.Uniform(num_leaves_);
  }
}

uint64_t PathOram::BucketIndex(uint64_t leaf, uint32_t level) const {
  // Node on the path to `leaf` at `level` (0 = root), heap-indexed from 0.
  const uint64_t node = (num_leaves_ + leaf) >> (levels_ - 1 - level);
  return node - 1;
}

bool PathOram::PathContains(uint64_t leaf, uint32_t level, uint64_t block_leaf) const {
  return BucketIndex(leaf, level) == BucketIndex(block_leaf, level);
}

std::vector<uint8_t> PathOram::Access(uint64_t addr, const std::vector<uint8_t>* new_data) {
  if (addr >= config_.num_blocks) {
    throw std::out_of_range("Path ORAM address out of range");
  }
  const uint64_t x = position_[addr];
  position_[addr] = rng_.Uniform(num_leaves_);
  return AccessAt(addr, x, position_[addr], new_data);
}

std::vector<uint8_t> PathOram::AccessAt(uint64_t addr, uint64_t x, uint64_t new_leaf,
                                        const std::vector<uint8_t>* new_data) {
  ++accesses_;
  position_[addr] = new_leaf;

  // Read the path into the stash.
  for (uint32_t level = 0; level < levels_; ++level) {
    std::vector<Block>& bucket = buckets_[BucketIndex(x, level)];
    blocks_moved_ += config_.bucket_capacity;
    for (Block& b : bucket) {
      stash_.push_back(std::move(b));
    }
    bucket.clear();
  }

  // Find (or create) the block in the stash; read and optionally update it.
  std::vector<uint8_t> result(config_.block_size, 0);
  Block* target = nullptr;
  for (Block& b : stash_) {
    if (b.addr == addr) {
      target = &b;
      break;
    }
  }
  if (target == nullptr) {
    stash_.push_back(Block{addr, position_[addr], std::vector<uint8_t>(config_.block_size, 0)});
    target = &stash_.back();
  }
  result = target->data;
  target->leaf = position_[addr];
  if (new_data != nullptr) {
    target->data = *new_data;
    target->data.resize(config_.block_size, 0);
  }

  // Greedy write-back, deepest level first.
  for (uint32_t level = levels_; level-- > 0;) {
    std::vector<Block>& bucket = buckets_[BucketIndex(x, level)];
    for (size_t i = 0; i < stash_.size() && bucket.size() < config_.bucket_capacity;) {
      if (PathContains(x, level, stash_[i].leaf)) {
        bucket.push_back(std::move(stash_[i]));
        stash_[i] = std::move(stash_.back());
        stash_.pop_back();
      } else {
        ++i;
      }
    }
    blocks_moved_ += config_.bucket_capacity;
  }
  max_stash_ = std::max(max_stash_, stash_.size());
  return result;
}

}  // namespace snoopy
