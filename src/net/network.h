// In-process message network.
//
// The functional Snoopy deployment runs its load balancers and subORAMs in one process
// (the substitute for the paper's 18-machine gRPC mesh); this router carries their
// messages, records the communication pattern into the enclave trace (Appendix B's
// trace includes "network communication"), and keeps byte/message statistics that the
// figure harnesses and the cluster cost model consume.
//
// An optional FaultInjector makes the network adversarial: calls can be dropped,
// delayed (on the shared VirtualClock), duplicated, bit-flipped, or terminated by a
// callee crash. Failures surface as the typed NetworkError hierarchy (fault.h) so
// callers can retry transient faults and run recovery for crashes; the Stats block
// additionally counts retries, timeouts, injected faults, and recoveries so bench
// harnesses and the simulator can report robustness observability alongside bytes.

#ifndef SNOOPY_SRC_NET_NETWORK_H_
#define SNOOPY_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/net/fault.h"
#include "src/net/retry.h"
#include "src/telemetry/metrics.h"

namespace snoopy {

class Network {
 public:
  // A handler consumes a request payload and produces a response payload.
  using Handler = std::function<std::vector<uint8_t>(std::span<const uint8_t>)>;

  void Register(const std::string& endpoint, Handler handler);
  // Removes an endpoint (no-op if absent). Used when resharding retires subORAMs;
  // like Register, only safe at wiring/quiescent points, never during concurrent
  // Calls.
  void Unregister(const std::string& endpoint);
  bool HasEndpoint(const std::string& endpoint) const;

  // Synchronous request/response. Throws EndpointNotFoundError for unknown endpoints;
  // with a fault injector attached, also TimeoutError (drop / reply lost) and
  // EndpointCrashedError (callee down until restarted). Injected corruption is
  // delivered, not thrown: the AEAD channels at the endpoints detect it.
  std::vector<uint8_t> Call(const std::string& from, const std::string& to,
                            std::span<const uint8_t> payload);

  // Both optional and non-owning. The clock absorbs injected delays so retry
  // deadlines see them.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }
  void set_clock(VirtualClock* clock) { clock_ = clock; }

  // Per-endpoint-pair traffic breakdown (keyed "from->to"). All of these are
  // adversary-visible wire facts, so recording them is leakage-free by definition.
  struct PairStats {
    uint64_t messages = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t retries = 0;   // resends on this pair (RecordRetry(from, to))
    uint64_t timeouts = 0;  // calls on this pair that ended without a reply
  };

  struct Stats {
    uint64_t messages = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    // Robustness observability.
    uint64_t retries = 0;          // resends performed by retry loops (RecordRetry)
    uint64_t timeouts = 0;         // calls that ended without a reply
    uint64_t faults_injected = 0;  // fault decisions that fired
    uint64_t recoveries = 0;       // component restore/rebuild events (RecordRecovery)
    // Per-pair breakdown; the aggregate fields above stay the sums over pairs (plus
    // recoveries/faults, which are per-component rather than per-pair events).
    std::map<std::string, PairStats> per_pair;
  };
  // Callers read stats at quiescent points (between epochs / after a run); the
  // returned reference aliases live state, so don't hold it across concurrent Calls.
  const Stats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_ = Stats{};
  }

  static std::string PairKey(const std::string& from, const std::string& to) {
    return from + "->" + to;
  }

  // Bumped by the owning orchestrator's retry/recovery code, which is where those
  // events are visible. The no-argument form keeps pre-breakdown callers
  // source-compatible (aggregate only). Safe from concurrent epoch workers.
  void RecordRetry() {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.retries;
  }
  void RecordRetry(const std::string& from, const std::string& to) {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.retries;
    ++stats_.per_pair[PairKey(from, to)].retries;
  }
  void RecordRecovery() {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.recoveries;
  }

  // Publishes a snapshot of the stats block into `registry` as gauges
  // (snoopy_net_* series, per-pair series labeled pair="from->to").
  void ExportTo(MetricsRegistry& registry) const;

 private:
  // Endpoint registration happens during wiring, strictly before concurrent Calls;
  // the map is read-only afterwards, so lookups take no lock. The stats block is the
  // shared-mutation hot spot: guarded by stats_mu_, never held across a handler call.
  std::map<std::string, Handler> endpoints_;
  mutable std::mutex stats_mu_;
  Stats stats_;
  FaultInjector* fault_injector_ = nullptr;
  VirtualClock* clock_ = nullptr;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_NET_NETWORK_H_
