// In-process message network.
//
// The functional Snoopy deployment runs its load balancers and subORAMs in one process
// (the substitute for the paper's 18-machine gRPC mesh); this router carries their
// messages, records the communication pattern into the enclave trace (Appendix B's
// trace includes "network communication"), and keeps byte/message statistics that the
// figure harnesses and the cluster cost model consume.

#ifndef SNOOPY_SRC_NET_NETWORK_H_
#define SNOOPY_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace snoopy {

class Network {
 public:
  // A handler consumes a request payload and produces a response payload.
  using Handler = std::function<std::vector<uint8_t>(std::span<const uint8_t>)>;

  void Register(const std::string& endpoint, Handler handler);
  bool HasEndpoint(const std::string& endpoint) const;

  // Synchronous request/response. Throws std::out_of_range for unknown endpoints.
  std::vector<uint8_t> Call(const std::string& from, const std::string& to,
                            std::span<const uint8_t> payload);

  struct Stats {
    uint64_t messages = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  std::map<std::string, Handler> endpoints_;
  Stats stats_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_NET_NETWORK_H_
