#include "src/net/network.h"

#include <stdexcept>

#include "src/enclave/trace.h"

namespace snoopy {

namespace {

uint64_t EndpointTag(const std::string& name) {
  // FNV-1a; only used as a trace label.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Network::Register(const std::string& endpoint, Handler handler) {
  endpoints_[endpoint] = std::move(handler);
}

bool Network::HasEndpoint(const std::string& endpoint) const {
  return endpoints_.count(endpoint) != 0;
}

std::vector<uint8_t> Network::Call(const std::string& from, const std::string& to,
                                   std::span<const uint8_t> payload) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    throw std::out_of_range("unknown endpoint: " + to);
  }
  TraceRecord(TraceOp::kMsgSend, EndpointTag(to), payload.size());
  ++stats_.messages;
  stats_.bytes_sent += payload.size();
  std::vector<uint8_t> response = it->second(payload);
  TraceRecord(TraceOp::kMsgRecv, EndpointTag(from), response.size());
  stats_.bytes_received += response.size();
  return response;
}

}  // namespace snoopy
