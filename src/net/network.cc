#include "src/net/network.h"

#include "src/enclave/trace.h"

namespace snoopy {

namespace {

uint64_t EndpointTag(const std::string& name) {
  // FNV-1a; only used as a trace label.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Network::Register(const std::string& endpoint, Handler handler) {
  endpoints_[endpoint] = std::move(handler);
}

void Network::Unregister(const std::string& endpoint) {
  endpoints_.erase(endpoint);
}

bool Network::HasEndpoint(const std::string& endpoint) const {
  return endpoints_.count(endpoint) != 0;
}

std::vector<uint8_t> Network::Call(const std::string& from, const std::string& to,
                                   std::span<const uint8_t> payload) {
  const auto it = endpoints_.find(to);  // read-only after wiring; no lock needed
  if (it == endpoints_.end()) {
    throw EndpointNotFoundError(to);
  }
  // std::map nodes are stable, so the pair reference stays valid after unlocking;
  // every mutation below re-takes stats_mu_ (never held across handler invocations).
  PairStats* pair = nullptr;
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    pair = &stats_.per_pair[PairKey(from, to)];
  }

  // A permanently lost component never answers again; restart cannot help, so this
  // is checked before the transient-crash state and surfaces as its own type.
  if (fault_injector_ != nullptr && fault_injector_->IsLost(to)) {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.timeouts;
    ++pair->timeouts;
    throw NodeLostError(to);
  }

  // A crashed component answers nothing; the caller's retry loop must recover it.
  if (fault_injector_ != nullptr && fault_injector_->IsCrashed(to)) {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.timeouts;
    ++pair->timeouts;
    throw EndpointCrashedError(to);
  }

  const FaultAction fault =
      fault_injector_ != nullptr ? fault_injector_->Decide(to) : FaultAction::kNone;

  // The send happens (and is adversary-visible) for every fault except a pre-send
  // drop, which we still trace: the adversary saw the bytes leave before losing them.
  TraceRecord(TraceOp::kMsgSend, EndpointTag(to), payload.size());
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    if (fault != FaultAction::kNone) {
      ++stats_.faults_injected;
    }
    ++stats_.messages;
    stats_.bytes_sent += payload.size();
    ++pair->messages;
    pair->bytes_sent += payload.size();
  }

  if (fault == FaultAction::kDrop) {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.timeouts;
    ++pair->timeouts;
    throw TimeoutError(to);
  }
  if (fault == FaultAction::kDelay && clock_ != nullptr) {
    clock_->Advance(fault_injector_->delay_s(to));
  }

  std::vector<uint8_t> request(payload.begin(), payload.end());
  if (fault == FaultAction::kCorruptRequest) {
    fault_injector_->CorruptBit(to, request);
  }

  std::vector<uint8_t> response = it->second(request);
  if (fault == FaultAction::kDuplicate) {
    // Second delivery of the identical bytes; receivers deduplicate (the subORAM
    // endpoint re-serves its cached epoch response). The duplicate's reply is the one
    // that "arrives".
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      ++stats_.messages;
      stats_.bytes_sent += request.size();
      ++pair->messages;
      pair->bytes_sent += request.size();
    }
    response = it->second(request);
  }
  if (fault == FaultAction::kCrashBeforeReply) {
    // The callee did the work, then died before replying: its component goes down and
    // the caller sees only silence.
    fault_injector_->MarkCrashed(FaultInjector::ComponentOf(to));
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.timeouts;
    ++pair->timeouts;
    throw TimeoutError(to);
  }
  if (fault == FaultAction::kNodeLoss) {
    // Same silence as a crash-before-reply, but the machine is gone for good: the
    // caller's retry sees a timeout now and NodeLostError on every later attempt.
    fault_injector_->MarkLost(FaultInjector::ComponentOf(to));
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.timeouts;
    ++pair->timeouts;
    throw TimeoutError(to);
  }
  if (fault == FaultAction::kCorruptReply) {
    fault_injector_->CorruptBit(to, response);
  }

  TraceRecord(TraceOp::kMsgRecv, EndpointTag(from), response.size());
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.bytes_received += response.size();
    pair->bytes_received += response.size();
  }
  return response;
}

void Network::ExportTo(MetricsRegistry& registry) const {
  // Snapshot export: gauges carrying the current totals. Every value here is a wire
  // fact the network adversary observes directly, so publishing it leaks nothing.
  std::lock_guard<std::mutex> g(stats_mu_);
  registry.GetGauge("snoopy_net_messages").SetValue(static_cast<double>(stats_.messages));
  registry.GetGauge("snoopy_net_bytes_sent").SetValue(static_cast<double>(stats_.bytes_sent));
  registry.GetGauge("snoopy_net_bytes_received")
      .SetValue(static_cast<double>(stats_.bytes_received));
  registry.GetGauge("snoopy_net_retries").SetValue(static_cast<double>(stats_.retries));
  registry.GetGauge("snoopy_net_timeouts").SetValue(static_cast<double>(stats_.timeouts));
  registry.GetGauge("snoopy_net_faults_injected")
      .SetValue(static_cast<double>(stats_.faults_injected));
  registry.GetGauge("snoopy_net_recoveries").SetValue(static_cast<double>(stats_.recoveries));
  for (const auto& [pair_key, ps] : stats_.per_pair) {
    const MetricLabels labels = {{"pair", pair_key}};
    registry.GetGauge("snoopy_net_pair_messages", labels)
        .SetValue(static_cast<double>(ps.messages));
    registry.GetGauge("snoopy_net_pair_bytes_sent", labels)
        .SetValue(static_cast<double>(ps.bytes_sent));
    registry.GetGauge("snoopy_net_pair_bytes_received", labels)
        .SetValue(static_cast<double>(ps.bytes_received));
    registry.GetGauge("snoopy_net_pair_retries", labels)
        .SetValue(static_cast<double>(ps.retries));
    registry.GetGauge("snoopy_net_pair_timeouts", labels)
        .SetValue(static_cast<double>(ps.timeouts));
  }
}

}  // namespace snoopy
