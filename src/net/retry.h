// Bounded retry with exponential backoff, jitter, and a per-call deadline.
//
// Callers of Network::Call use this to turn transient faults (drops, lost replies,
// corrupted payloads) into at-most-deadline-long hiccups instead of epoch-wedging
// exceptions. Two rules keep retries compatible with the security model:
//   1. resends must be byte-identical (sealing a payload twice would advance the
//      channel's nonce counter and desynchronize it), so the retried callable closes
//      over already-sealed bytes;
//   2. time is *virtual* -- the single-process deployment has no wall clock worth
//      sleeping on, and a VirtualClock keeps chaos tests deterministic and instant.

#ifndef SNOOPY_SRC_NET_RETRY_H_
#define SNOOPY_SRC_NET_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/crypto/rng.h"
#include "src/net/fault.h"

namespace snoopy {

// Deterministic stand-in for wall-clock time, shared by the network (injected delays)
// and the retry executor (backoff waits). Seconds, monotone. Advance is a CAS loop so
// concurrent epoch workers never lose an advance; the final reading is the sum of all
// advances and therefore independent of interleaving.
class VirtualClock {
 public:
  double now_s() const { return now_s_.load(std::memory_order_relaxed); }
  void Advance(double seconds) {
    if (seconds > 0) {
      double cur = now_s_.load(std::memory_order_relaxed);
      while (!now_s_.compare_exchange_weak(cur, cur + seconds, std::memory_order_relaxed)) {
      }
    }
  }

 private:
  std::atomic<double> now_s_{0};
};

struct RetryPolicy {
  int max_attempts = 6;        // total tries, including the first
  double base_delay_s = 1e-3;  // backoff before the second attempt
  double multiplier = 2.0;     // exponential growth factor
  double max_delay_s = 0.25;   // backoff cap
  double jitter = 0.5;         // fraction of each delay drawn uniformly at random
  // Per-call budget over the executor's *own* backoff waits (not the shared clock):
  // other workers advancing the VirtualClock concurrently must not shrink this call's
  // budget, or retry counts would depend on thread interleaving.
  double deadline_s = 5.0;
  // Hard cap on the total number of retries (re-attempts after the first) one
  // Execute() may perform, recovery rounds included. 0 means uncapped (the
  // max_attempts/deadline budget alone applies). This is the bound that keeps
  // requests aimed at a dead partition from spinning: the orchestrator converts the
  // resulting DeadlineExceededError into a PartitionUnavailable failover to the
  // epoch queue.
  int max_total_retries = 0;

  // Backoff before attempt `attempt` (1-based; attempt 1 has none): jittered
  // min(base * multiplier^(attempt-2), max).
  double BackoffSeconds(int attempt, Rng& rng) const;
};

// Runs a callable under a RetryPolicy. Retries NetworkError exceptions with
// retryable() set; everything else propagates immediately. When attempts or the
// deadline run out, throws DeadlineExceededError naming the endpoint of the last
// failure.
class RetryExecutor {
 public:
  // `clock` may be null (a private clock is used); `on_retry` (optional) observes
  // each retry, e.g. to bump Network::Stats.
  RetryExecutor(const RetryPolicy& policy, uint64_t jitter_seed, VirtualClock* clock)
      : policy_(policy), rng_(jitter_seed), clock_(clock) {}

  void set_on_retry(std::function<void()> cb) { on_retry_ = std::move(cb); }

  // Attempts `call` until it returns, a non-retryable error escapes, or the budget is
  // exhausted. `recover` (may be empty) runs before re-attempting after an
  // EndpointCrashedError -- this is where Snoopy restores a crashed subORAM; errors it
  // throws count against the same budget.
  std::vector<uint8_t> Execute(const std::function<std::vector<uint8_t>()>& call,
                               const std::function<void(const EndpointCrashedError&)>& recover);

  int last_attempts() const { return last_attempts_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  VirtualClock* clock_;
  VirtualClock private_clock_;
  std::function<void()> on_retry_;
  int last_attempts_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_NET_RETRY_H_
