// Authenticated encrypted channels with replay protection.
//
// "All communication is encrypted using an authenticated encryption scheme with a
// nonce to prevent replay attacks" (paper section 3.1). A SecureChannel is one
// direction of a link: the sender seals each message under a strictly increasing
// counter nonce, the receiver refuses anything that does not authenticate under the
// next expected counter -- which rejects replays, reorders, and drops loudly.

#ifndef SNOOPY_SRC_NET_CHANNEL_H_
#define SNOOPY_SRC_NET_CHANNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/crypto/aead.h"

namespace snoopy {

class SecureChannel {
 public:
  // `channel_id` domain-separates the two directions of a link (and distinct links
  // sharing a key).
  SecureChannel(const Aead::Key& key, uint32_t channel_id)
      : aead_(key), channel_id_(channel_id) {}

  // Sender side: seals `plaintext` under the next nonce.
  std::vector<uint8_t> Seal(std::span<const uint8_t> plaintext);

  // Receiver side: opens the next message. Returns false on authentication failure or
  // replay (the counter does not advance in that case).
  bool Open(std::span<const uint8_t> sealed, std::vector<uint8_t>& plaintext_out);

  // Re-establishes the channel under a fresh key, resetting both counters. Used when
  // an endpoint is restarted after a crash: its in-enclave channel state is gone, so
  // the surviving peer re-runs attestation and both sides start a new session (paper
  // section 9 -- sealed state is restored, channels are re-established).
  void Rekey(const Aead::Key& key) {
    aead_ = Aead(key);
    send_counter_ = 0;
    recv_counter_ = 0;
  }

  uint64_t messages_sealed() const { return send_counter_; }
  uint64_t messages_opened() const { return recv_counter_; }

 private:
  Aead aead_;
  uint32_t channel_id_;
  uint64_t send_counter_ = 0;
  uint64_t recv_counter_ = 0;
};

// A bidirectional link: two channels over one shared key with distinct ids.
class SecureLink {
 public:
  SecureLink(const Aead::Key& key, uint32_t link_id)
      : a_to_b_(key, 2 * link_id), b_to_a_(key, 2 * link_id + 1) {}

  SecureChannel& a_to_b() { return a_to_b_; }
  SecureChannel& b_to_a() { return b_to_a_; }

  // Fresh session for both directions (see SecureChannel::Rekey).
  void Rekey(const Aead::Key& key) {
    a_to_b_.Rekey(key);
    b_to_a_.Rekey(key);
  }

 private:
  SecureChannel a_to_b_;
  SecureChannel b_to_a_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_NET_CHANNEL_H_
