#include "src/net/channel.h"

namespace snoopy {

std::vector<uint8_t> SecureChannel::Seal(std::span<const uint8_t> plaintext) {
  const Aead::Nonce nonce = Aead::CounterNonce(send_counter_, channel_id_);
  ++send_counter_;
  return aead_.Seal(nonce, /*aad=*/{}, plaintext);
}

bool SecureChannel::Open(std::span<const uint8_t> sealed, std::vector<uint8_t>& plaintext_out) {
  const Aead::Nonce nonce = Aead::CounterNonce(recv_counter_, channel_id_);
  if (!aead_.Open(nonce, /*aad=*/{}, sealed, plaintext_out)) {
    return false;
  }
  ++recv_counter_;
  return true;
}

}  // namespace snoopy
