// Typed network failures and deterministic fault injection.
//
// The paper's operability argument (sections 4.3 and 9) rests on components that
// tolerate the network misbehaving: load balancers are stateless across epochs and
// subORAM state can be resealed and restored under rollback protection. This header
// makes failure a first-class, *testable* input: a seeded FaultInjector decides, per
// Network::Call, whether the message is dropped, delayed, duplicated, corrupted, or
// whether the callee crashes before replying -- and a NetworkError hierarchy gives
// callers enough structure to retry, recover, or surface each case deliberately.
//
// Determinism matters: the injector derives one CSPRNG *stream per target* from its
// seed, so every decision is a pure function of (seed, target, per-target call index).
// That invariant is what lets the parallel epoch executor run subORAM workers
// concurrently without changing which faults fire: each endpoint's call sequence is
// deterministic within its worker, and no other thread's draws can perturb its
// stream. Chaos runs replay exactly at any epoch_threads setting, and the
// chaos-reconciliation telemetry test keeps balancing to the decision.
//
// Thread safety: all mutating entry points are mutex-guarded; Decide/PollEpochCrash/
// CorruptBit may be called from concurrent epoch workers.

#ifndef SNOOPY_SRC_NET_FAULT_H_
#define SNOOPY_SRC_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {

// ---------------------------------------------------------------------------------
// Typed error hierarchy. Every failure Network::Call can produce derives from
// NetworkError and carries the endpoint it concerns; `retryable()` tells a retry loop
// whether resending the same bytes can possibly help.
// ---------------------------------------------------------------------------------

class NetworkError : public std::runtime_error {
 public:
  NetworkError(const std::string& what, std::string endpoint, bool retryable)
      : std::runtime_error(what), endpoint_(std::move(endpoint)), retryable_(retryable) {}

  const std::string& endpoint() const { return endpoint_; }
  bool retryable() const { return retryable_; }

 private:
  std::string endpoint_;
  bool retryable_;
};

// No handler is registered under the name: a wiring bug, never transient.
class EndpointNotFoundError : public NetworkError {
 public:
  explicit EndpointNotFoundError(const std::string& endpoint)
      : NetworkError("unknown endpoint: " + endpoint, endpoint, /*retryable=*/false) {}
};

// The request or its reply was lost; the caller cannot tell which. Retryable --
// callers must resend byte-identical payloads so the receiver can deduplicate.
class TimeoutError : public NetworkError {
 public:
  explicit TimeoutError(const std::string& endpoint)
      : NetworkError("timed out calling " + endpoint, endpoint, /*retryable=*/true) {}
};

// The component owning the endpoint has crashed and answers nothing until it is
// restarted. Retryable only after recovery; Snoopy's epoch loop catches this
// specifically and runs the sealed-snapshot restore protocol.
class EndpointCrashedError : public NetworkError {
 public:
  explicit EndpointCrashedError(const std::string& endpoint)
      : NetworkError("endpoint crashed: " + endpoint, endpoint, /*retryable=*/true) {}
};

// Payload failed authentication (AEAD open) at either end: flipped bits in flight.
// Retryable -- the sender's copy is intact and channel counters only advance on
// successful opens, so a byte-identical resend authenticates.
class IntegrityError : public NetworkError {
 public:
  explicit IntegrityError(const std::string& endpoint)
      : NetworkError("payload failed authentication at " + endpoint, endpoint,
                     /*retryable=*/true) {}
};

// A retry loop exhausted its per-call deadline or attempt budget. Terminal.
class DeadlineExceededError : public NetworkError {
 public:
  DeadlineExceededError(const std::string& endpoint, int attempts)
      : NetworkError("deadline exceeded after " + std::to_string(attempts) +
                         " attempts calling " + endpoint,
                     endpoint, /*retryable=*/false) {}
};

// The component owning the endpoint is *permanently* gone: the machine failed for
// good and took its local state with it. Unlike EndpointCrashedError this is not
// retryable and no restart will help -- only the repair protocol (reconstructing the
// partition from redundant stripes on a spare node) brings the component back.
class NodeLostError : public NetworkError {
 public:
  explicit NodeLostError(const std::string& endpoint)
      : NetworkError("node permanently lost: " + endpoint, endpoint, /*retryable=*/false) {}
};

// A request targets a partition that is permanently lost or still under repair. The
// orchestrator fails the request over to the epoch queue (it re-enters a later epoch)
// instead of letting a retry loop spin against a dead machine. Carries the partition
// id and the public number of repair epochs remaining.
class PartitionUnavailableError : public NetworkError {
 public:
  PartitionUnavailableError(const std::string& endpoint, uint32_t partition,
                            uint32_t repair_epochs_remaining)
      : NetworkError("partition " + std::to_string(partition) + " unavailable (" +
                         std::to_string(repair_epochs_remaining) +
                         " repair epochs remaining) at " + endpoint,
                     endpoint, /*retryable=*/false),
        partition_(partition),
        repair_epochs_remaining_(repair_epochs_remaining) {}

  uint32_t partition() const { return partition_; }
  uint32_t repair_epochs_remaining() const { return repair_epochs_remaining_; }

 private:
  uint32_t partition_;
  uint32_t repair_epochs_remaining_;
};

// ---------------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------------

// Per-call fault probabilities. Probabilities are evaluated in the declared order and
// at most one fault fires per call.
struct FaultProfile {
  double drop = 0;                // request lost before delivery
  double duplicate = 0;           // delivered twice (handler may run twice)
  double corrupt = 0;             // one bit of the request or reply flipped in flight
  double crash_before_reply = 0;  // callee processes the request, then dies; reply lost
  double delay = 0;               // delivery delayed by `delay_s` on the virtual clock
  double delay_s = 0;             // virtual seconds added when a delay fires
  // Probability, polled once per component per epoch by the orchestrator, that the
  // component is found crashed at the epoch boundary (models host reboots between
  // epochs rather than mid-message).
  double crash_at_epoch_start = 0;
  // Permanent loss: the machine dies mid-call (the request may have been processed;
  // the reply is lost) and never comes back -- its component stays lost until
  // Reincarnate() (the repair protocol's completion), not Restart().
  double node_loss = 0;
  // Permanent-loss analogue of crash_at_epoch_start, polled once per component per
  // epoch via PollNodeLoss (models a machine found dead between epochs).
  double node_loss_at_epoch_start = 0;
};

enum class FaultAction : uint8_t {
  kNone = 0,
  kDrop,
  kDuplicate,
  kCorruptRequest,
  kCorruptReply,
  kCrashBeforeReply,
  kDelay,
  kNodeLoss,
};

// Seeded chaos source consulted by Network::Call. Profiles attach to *components*
// (e.g. "suboram/2"), which own every endpoint sharing their first two path segments
// (e.g. "suboram/2/from/0"); a default profile covers the rest. Crashed components
// stay down until Restart() -- recovery code calls Restart after restoring state.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  // "suboram/2/from/1" -> "suboram/2"; names with fewer than two segments map to
  // themselves.
  static std::string ComponentOf(const std::string& endpoint);

  void set_default_profile(const FaultProfile& profile) { default_profile_ = profile; }
  void SetProfile(const std::string& component, const FaultProfile& profile);
  const FaultProfile& ProfileFor(const std::string& endpoint) const;

  // Draws the fault (if any) for one delivery to `endpoint`, from the endpoint's own
  // deterministic stream. Corruption picks request vs. reply direction with a fair
  // coin (same stream).
  FaultAction Decide(const std::string& endpoint);

  // Epoch-boundary crash poll for a component (load balancer or subORAM); marks the
  // component crashed when the draw fires so the caller must recover it. Draws from
  // the component's stream.
  bool PollEpochCrash(const std::string& component);

  // Epoch-boundary permanent-loss poll. Marks the component lost when the draw fires
  // (drawn from the component's stream, after the crash poll's draw). Returns false
  // without drawing when the component is already lost.
  bool PollNodeLoss(const std::string& component);

  bool IsCrashed(const std::string& endpoint) const;
  void MarkCrashed(const std::string& component) {
    std::lock_guard<std::mutex> g(mu_);
    crashed_.insert(component);
  }
  // Restart clears a transient crash only: a permanently lost component stays lost --
  // restoring a sealed snapshot needs a machine, and the machine is gone.
  void Restart(const std::string& component) {
    std::lock_guard<std::mutex> g(mu_);
    crashed_.erase(component);
  }

  // --- Permanent loss --------------------------------------------------------------
  bool IsLost(const std::string& endpoint) const;
  void MarkLost(const std::string& component) {
    std::lock_guard<std::mutex> g(mu_);
    lost_.insert(component);
  }
  // Completes the repair protocol's replacement: the spare machine assumes the lost
  // component's identity, clearing both the lost and (any stale) crashed marks.
  void Reincarnate(const std::string& component) {
    std::lock_guard<std::mutex> g(mu_);
    lost_.erase(component);
    crashed_.erase(component);
  }

  // Flips one uniformly chosen bit (no-op on empty payloads), drawing the bit index
  // from `endpoint`'s stream so corruption stays deterministic per target under
  // concurrency. The endpoint-less overload draws from a dedicated stream (direct
  // test callers).
  void CorruptBit(const std::string& endpoint, std::vector<uint8_t>& bytes);
  void CorruptBit(std::vector<uint8_t>& bytes);

  double delay_s(const std::string& endpoint) const { return ProfileFor(endpoint).delay_s; }

  uint64_t decisions() const {
    std::lock_guard<std::mutex> g(mu_);
    return decisions_;
  }

  // --- Fired-decision log ----------------------------------------------------------
  // Every decision that actually fired, in firing order: per-call faults (target =
  // endpoint, epoch_crash = false) and epoch-boundary crash polls that hit (target =
  // component, action = kCrashBeforeReply, epoch_crash = true). kNone decisions are
  // not logged. The telemetry tests reconcile Network::Stats and the metrics registry
  // against this log exactly -- each fired fault must account for a fixed number of
  // retries/recoveries/dedup-hits, with no double counting on retransmit dedup.
  struct FiredDecision {
    std::string target;
    FaultAction action = FaultAction::kNone;
    bool epoch_crash = false;
  };
  // Snapshot copy: safe to iterate while workers keep firing. Under parallel epochs
  // the *order* of entries from different targets depends on scheduling, but the
  // per-target subsequences (which the reconciliation test counts) are deterministic.
  std::vector<FiredDecision> fired_log() const {
    std::lock_guard<std::mutex> g(mu_);
    return fired_log_;
  }
  // Fired per-call decisions of one kind (epoch-crash entries excluded).
  uint64_t fired_count(FaultAction action) const;
  uint64_t fired_epoch_crashes() const;
  void ClearFiredLog() {
    std::lock_guard<std::mutex> g(mu_);
    fired_log_.clear();
  }

 private:
  static bool Flip(Rng& rng, double probability);
  // The per-target stream, created on first use: seeded from (seed_, target) only, so
  // a target's draw sequence never depends on other targets' traffic. Requires mu_.
  Rng& StreamFor(const std::string& target);

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, Rng> streams_;            // by target (endpoint or component)
  FaultProfile default_profile_;
  std::map<std::string, FaultProfile> profiles_;  // by component
  std::set<std::string> crashed_;                 // components currently down
  std::set<std::string> lost_;                    // components permanently lost
  uint64_t decisions_ = 0;
  std::vector<FiredDecision> fired_log_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_NET_FAULT_H_
