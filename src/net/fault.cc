#include "src/net/fault.h"

namespace snoopy {

namespace {

// splitmix64 finalizer: decorrelates the per-target seeds derived below.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t FnvHash(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string FaultInjector::ComponentOf(const std::string& endpoint) {
  const size_t first = endpoint.find('/');
  if (first == std::string::npos) {
    return endpoint;
  }
  const size_t second = endpoint.find('/', first + 1);
  return second == std::string::npos ? endpoint : endpoint.substr(0, second);
}

void FaultInjector::SetProfile(const std::string& component, const FaultProfile& profile) {
  std::lock_guard<std::mutex> g(mu_);
  profiles_[component] = profile;
}

const FaultProfile& FaultInjector::ProfileFor(const std::string& endpoint) const {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = profiles_.find(ComponentOf(endpoint));
  return it == profiles_.end() ? default_profile_ : it->second;
}

Rng& FaultInjector::StreamFor(const std::string& target) {
  const auto it = streams_.find(target);
  if (it != streams_.end()) {
    return it->second;
  }
  return streams_.try_emplace(target, Mix64(seed_ ^ FnvHash(target))).first->second;
}

bool FaultInjector::Flip(Rng& rng, double probability) {
  if (probability <= 0) {
    return false;
  }
  // 53-bit uniform in [0, 1); plenty of resolution for test probabilities.
  const double u = static_cast<double>(rng.Next64() >> 11) / 9007199254740992.0;
  return u < probability;
}

FaultAction FaultInjector::Decide(const std::string& endpoint) {
  std::lock_guard<std::mutex> g(mu_);
  ++decisions_;
  const auto pit = profiles_.find(ComponentOf(endpoint));
  const FaultProfile& p = pit == profiles_.end() ? default_profile_ : pit->second;
  Rng& rng = StreamFor(endpoint);
  FaultAction action = FaultAction::kNone;
  if (Flip(rng, p.drop)) {
    action = FaultAction::kDrop;
  } else if (Flip(rng, p.duplicate)) {
    action = FaultAction::kDuplicate;
  } else if (Flip(rng, p.corrupt)) {
    action = rng.Uniform(2) == 0 ? FaultAction::kCorruptRequest : FaultAction::kCorruptReply;
  } else if (Flip(rng, p.crash_before_reply)) {
    action = FaultAction::kCrashBeforeReply;
  } else if (Flip(rng, p.delay)) {
    action = FaultAction::kDelay;
  } else if (Flip(rng, p.node_loss)) {
    // Drawn last so enabling node loss leaves the existing fault kinds' draw
    // sequences untouched (Flip consumes no randomness at probability zero).
    action = FaultAction::kNodeLoss;
  }
  if (action != FaultAction::kNone) {
    fired_log_.push_back(FiredDecision{endpoint, action, /*epoch_crash=*/false});
  }
  return action;
}

bool FaultInjector::PollEpochCrash(const std::string& component) {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = profiles_.find(component);
  const FaultProfile& p = it == profiles_.end() ? default_profile_ : it->second;
  if (!Flip(StreamFor(component), p.crash_at_epoch_start)) {
    return false;
  }
  crashed_.insert(component);
  fired_log_.push_back(
      FiredDecision{component, FaultAction::kCrashBeforeReply, /*epoch_crash=*/true});
  return true;
}

bool FaultInjector::PollNodeLoss(const std::string& component) {
  std::lock_guard<std::mutex> g(mu_);
  if (lost_.count(component) != 0) {
    return false;  // already lost; no draw, so streams stay deterministic
  }
  const auto it = profiles_.find(component);
  const FaultProfile& p = it == profiles_.end() ? default_profile_ : it->second;
  if (!Flip(StreamFor(component), p.node_loss_at_epoch_start)) {
    return false;
  }
  lost_.insert(component);
  fired_log_.push_back(FiredDecision{component, FaultAction::kNodeLoss, /*epoch_crash=*/true});
  return true;
}

uint64_t FaultInjector::fired_count(FaultAction action) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t n = 0;
  for (const FiredDecision& d : fired_log_) {
    if (!d.epoch_crash && d.action == action) {
      ++n;
    }
  }
  return n;
}

uint64_t FaultInjector::fired_epoch_crashes() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t n = 0;
  for (const FiredDecision& d : fired_log_) {
    if (d.epoch_crash) {
      ++n;
    }
  }
  return n;
}

bool FaultInjector::IsCrashed(const std::string& endpoint) const {
  std::lock_guard<std::mutex> g(mu_);
  return crashed_.count(ComponentOf(endpoint)) != 0;
}

bool FaultInjector::IsLost(const std::string& endpoint) const {
  std::lock_guard<std::mutex> g(mu_);
  return lost_.count(ComponentOf(endpoint)) != 0;
}

void FaultInjector::CorruptBit(const std::string& endpoint, std::vector<uint8_t>& bytes) {
  if (bytes.empty()) {
    return;
  }
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t bit = StreamFor(endpoint).Uniform(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

void FaultInjector::CorruptBit(std::vector<uint8_t>& bytes) {
  // Dedicated stream so direct callers (tests corrupting payloads by hand) don't
  // perturb any endpoint's decision sequence.
  CorruptBit("__direct__", bytes);
}

}  // namespace snoopy
