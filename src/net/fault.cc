#include "src/net/fault.h"

namespace snoopy {

std::string FaultInjector::ComponentOf(const std::string& endpoint) {
  const size_t first = endpoint.find('/');
  if (first == std::string::npos) {
    return endpoint;
  }
  const size_t second = endpoint.find('/', first + 1);
  return second == std::string::npos ? endpoint : endpoint.substr(0, second);
}

void FaultInjector::SetProfile(const std::string& component, const FaultProfile& profile) {
  profiles_[component] = profile;
}

const FaultProfile& FaultInjector::ProfileFor(const std::string& endpoint) const {
  const auto it = profiles_.find(ComponentOf(endpoint));
  return it == profiles_.end() ? default_profile_ : it->second;
}

bool FaultInjector::Flip(double probability) {
  if (probability <= 0) {
    return false;
  }
  // 53-bit uniform in [0, 1); plenty of resolution for test probabilities.
  const double u = static_cast<double>(rng_.Next64() >> 11) / 9007199254740992.0;
  return u < probability;
}

FaultAction FaultInjector::Decide(const std::string& endpoint) {
  ++decisions_;
  const FaultProfile& p = ProfileFor(endpoint);
  if (Flip(p.drop)) {
    return FaultAction::kDrop;
  }
  if (Flip(p.duplicate)) {
    return FaultAction::kDuplicate;
  }
  if (Flip(p.corrupt)) {
    return rng_.Uniform(2) == 0 ? FaultAction::kCorruptRequest : FaultAction::kCorruptReply;
  }
  if (Flip(p.crash_before_reply)) {
    return FaultAction::kCrashBeforeReply;
  }
  if (Flip(p.delay)) {
    return FaultAction::kDelay;
  }
  return FaultAction::kNone;
}

bool FaultInjector::PollEpochCrash(const std::string& component) {
  const auto it = profiles_.find(component);
  const FaultProfile& p = it == profiles_.end() ? default_profile_ : it->second;
  if (!Flip(p.crash_at_epoch_start)) {
    return false;
  }
  MarkCrashed(component);
  return true;
}

bool FaultInjector::IsCrashed(const std::string& endpoint) const {
  return crashed_.count(ComponentOf(endpoint)) != 0;
}

void FaultInjector::CorruptBit(std::vector<uint8_t>& bytes) {
  if (bytes.empty()) {
    return;
  }
  const uint64_t bit = rng_.Uniform(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace snoopy
