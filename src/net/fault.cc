#include "src/net/fault.h"

namespace snoopy {

std::string FaultInjector::ComponentOf(const std::string& endpoint) {
  const size_t first = endpoint.find('/');
  if (first == std::string::npos) {
    return endpoint;
  }
  const size_t second = endpoint.find('/', first + 1);
  return second == std::string::npos ? endpoint : endpoint.substr(0, second);
}

void FaultInjector::SetProfile(const std::string& component, const FaultProfile& profile) {
  profiles_[component] = profile;
}

const FaultProfile& FaultInjector::ProfileFor(const std::string& endpoint) const {
  const auto it = profiles_.find(ComponentOf(endpoint));
  return it == profiles_.end() ? default_profile_ : it->second;
}

bool FaultInjector::Flip(double probability) {
  if (probability <= 0) {
    return false;
  }
  // 53-bit uniform in [0, 1); plenty of resolution for test probabilities.
  const double u = static_cast<double>(rng_.Next64() >> 11) / 9007199254740992.0;
  return u < probability;
}

FaultAction FaultInjector::Decide(const std::string& endpoint) {
  ++decisions_;
  const FaultProfile& p = ProfileFor(endpoint);
  FaultAction action = FaultAction::kNone;
  if (Flip(p.drop)) {
    action = FaultAction::kDrop;
  } else if (Flip(p.duplicate)) {
    action = FaultAction::kDuplicate;
  } else if (Flip(p.corrupt)) {
    action = rng_.Uniform(2) == 0 ? FaultAction::kCorruptRequest : FaultAction::kCorruptReply;
  } else if (Flip(p.crash_before_reply)) {
    action = FaultAction::kCrashBeforeReply;
  } else if (Flip(p.delay)) {
    action = FaultAction::kDelay;
  }
  if (action != FaultAction::kNone) {
    fired_log_.push_back(FiredDecision{endpoint, action, /*epoch_crash=*/false});
  }
  return action;
}

bool FaultInjector::PollEpochCrash(const std::string& component) {
  const auto it = profiles_.find(component);
  const FaultProfile& p = it == profiles_.end() ? default_profile_ : it->second;
  if (!Flip(p.crash_at_epoch_start)) {
    return false;
  }
  MarkCrashed(component);
  fired_log_.push_back(
      FiredDecision{component, FaultAction::kCrashBeforeReply, /*epoch_crash=*/true});
  return true;
}

uint64_t FaultInjector::fired_count(FaultAction action) const {
  uint64_t n = 0;
  for (const FiredDecision& d : fired_log_) {
    if (!d.epoch_crash && d.action == action) {
      ++n;
    }
  }
  return n;
}

uint64_t FaultInjector::fired_epoch_crashes() const {
  uint64_t n = 0;
  for (const FiredDecision& d : fired_log_) {
    if (d.epoch_crash) {
      ++n;
    }
  }
  return n;
}

bool FaultInjector::IsCrashed(const std::string& endpoint) const {
  return crashed_.count(ComponentOf(endpoint)) != 0;
}

void FaultInjector::CorruptBit(std::vector<uint8_t>& bytes) {
  if (bytes.empty()) {
    return;
  }
  const uint64_t bit = rng_.Uniform(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace snoopy
