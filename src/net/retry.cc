#include "src/net/retry.h"

#include <algorithm>

namespace snoopy {

double RetryPolicy::BackoffSeconds(int attempt, Rng& rng) const {
  if (attempt <= 1) {
    return 0;
  }
  double delay = base_delay_s;
  for (int i = 2; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= max_delay_s) {
      break;
    }
  }
  delay = std::min(delay, max_delay_s);
  if (jitter > 0) {
    const double u = static_cast<double>(rng.Next64() >> 11) / 9007199254740992.0;
    delay *= 1.0 - jitter * u;  // full delay down to (1 - jitter) * delay
  }
  return delay;
}

std::vector<uint8_t> RetryExecutor::Execute(
    const std::function<std::vector<uint8_t>()>& call,
    const std::function<void(const EndpointCrashedError&)>& recover) {
  VirtualClock* clock = clock_ != nullptr ? clock_ : &private_clock_;
  // The deadline is accounted against this call's own backoff waits, not against
  // elapsed shared-clock time: concurrent workers (and injected delays they absorb)
  // advance the shared VirtualClock too, and charging their time here would make
  // retry exhaustion depend on thread interleaving.
  double waited_s = 0;
  std::string last_endpoint;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    last_attempts_ = attempt;
    if (attempt > 1) {
      // The total-retry cap bounds re-attempts across the whole Execute, recovery
      // rounds included; attempt k performs k-1 retries.
      if (policy_.max_total_retries > 0 && attempt - 1 > policy_.max_total_retries) {
        break;
      }
      const double backoff_s = policy_.BackoffSeconds(attempt, rng_);
      clock->Advance(backoff_s);
      waited_s += backoff_s;
      if (waited_s > policy_.deadline_s) {
        break;
      }
      if (on_retry_) {
        on_retry_();
      }
    }
    try {
      return call();
    } catch (const EndpointCrashedError& e) {
      last_endpoint = e.endpoint();
      if (recover) {
        // Recovery failures (e.g. a crash re-injected mid-restore) are themselves
        // NetworkErrors and consume an attempt like any other transient fault.
        try {
          recover(e);
        } catch (const NetworkError& inner) {
          if (!inner.retryable()) {
            throw;
          }
          last_endpoint = inner.endpoint();
        }
      }
    } catch (const NetworkError& e) {
      if (!e.retryable()) {
        throw;
      }
      last_endpoint = e.endpoint();
    }
  }
  throw DeadlineExceededError(last_endpoint, last_attempts_);
}

}  // namespace snoopy
