#include "src/core/client.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

SnoopyClient::SnoopyClient(Snoopy& deployment, uint64_t client_id, uint64_t seed)
    : deployment_(deployment), client_id_(client_id), rng_(seed) {
  identity_ = std::make_unique<Enclave>("snoopy-client", client_id);
  // Mutual attestation: the client verifies every load balancer's quote, and the
  // deployment verifies the client's before provisioning channels.
  for (uint32_t lb = 0; lb < deployment_.config().num_load_balancers; ++lb) {
    if (!AttestationService::Verify(deployment_.lb_quote(lb))) {
      throw std::runtime_error("load balancer attestation failed");
    }
  }
  deployment_.RegisterClient(client_id_, identity_->quote());
}

uint64_t SnoopyClient::Submit(uint64_t key, uint8_t op, std::span<const uint8_t> value) {
  const auto lb =
      static_cast<uint32_t>(rng_.Uniform(deployment_.config().num_load_balancers));
  RequestBatch one(deployment_.config().value_size);
  RequestHeader h;
  h.key = key;
  h.op = op;
  h.client_id = client_id_;
  h.client_seq = next_seq_++;
  one.Append(h, value);

  const std::vector<uint8_t> sealed =
      deployment_.client_link(client_id_, lb).a_to_b().Seal(one.Serialize());
  const std::vector<uint8_t> ack = deployment_.network_mutable().Call(
      "client/" + std::to_string(client_id_),
      "lb/" + std::to_string(lb) + "/client/" + std::to_string(client_id_), sealed);
  if (ack.empty() || ack[0] != 1) {
    throw std::runtime_error("load balancer did not acknowledge the request");
  }
  return h.client_seq;
}

uint64_t SnoopyClient::Read(uint64_t key) { return Submit(key, kOpRead, {}); }

uint64_t SnoopyClient::Write(uint64_t key, std::span<const uint8_t> value) {
  return Submit(key, kOpWrite, value);
}

std::vector<SnoopyClient::Response> SnoopyClient::FetchResponses() {
  std::vector<Response> out;
  for (const std::vector<uint8_t>& blob : deployment_.TakeMailbox(client_id_)) {
    if (blob.size() < 4) {
      throw std::runtime_error("malformed mailbox entry");
    }
    uint32_t lb = 0;
    std::memcpy(&lb, blob.data(), 4);
    std::vector<uint8_t> plain;
    if (!deployment_.client_link(client_id_, lb)
             .b_to_a()
             .Open(std::span<const uint8_t>(blob.data() + 4, blob.size() - 4), plain)) {
      throw std::runtime_error("response failed authentication");
    }
    RequestBatch one = RequestBatch::Deserialize(plain);
    for (size_t i = 0; i < one.size(); ++i) {
      Response resp;
      resp.client_seq = one.Header(i).client_seq;
      resp.key = one.Header(i).key;
      resp.value.assign(one.Value(i), one.Value(i) + one.value_size());
      out.push_back(std::move(resp));
    }
  }
  return out;
}

}  // namespace snoopy
