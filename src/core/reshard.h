// Oblivious key-space redistribution (epoch-boundary resharding).
//
// Changing the number of subORAMs moves every object: the partition function is a
// secret keyed hash of the object key, so which objects move -- and where -- is
// secret. Redistribution therefore runs the same oblivious machinery as the paper's
// LoadBalancer.Initialize (Appendix B, Figure 23): tag each record with its (secret)
// target partition, obliviously sort by the tag, and split at the *public* partition
// boundaries (partition sizes are public: each subORAM receives its partition in the
// clear inside its enclave, exactly as at initial load).
//
// This is the shared helper behind both Snoopy::InitializeOblivious (initial load)
// and Snoopy::Reshard (live scale-up/scale-down); keeping the secret-handling loop in
// one lint-enforced file keeps bin placement over secret keys inside an audited
// oblivious region.

#ifndef SNOOPY_SRC_CORE_RESHARD_H_
#define SNOOPY_SRC_CORE_RESHARD_H_

#include <cstdint>
#include <vector>

#include "src/crypto/siphash.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/slab.h"

namespace snoopy {

// Redistribution record layout: bin(4) | pad(4) | key(8) | value(value_size).
inline constexpr size_t kReshardHeaderBytes = 16;
inline constexpr size_t kReshardKeyOffset = 8;

// Maps a keyed partition hash onto [0, num_bins) without division: Lemire's
// multiply-shift reduction ((hash * num_bins) >> 64). The hash is secret-derived, and
// x86 div/idiv latency depends on operand magnitude, so `hash % num_bins` would make
// partition assignment variable-time in the secret hash (binary taint rule B03 in
// tools/ct_dataflow.py); the 64x64->128 multiply is constant-time. Every consumer of
// the partition function (LoadBalancer::SubOramOf, resharding) must use this same
// reduction so routing and placement agree.
inline uint32_t PartitionBinOfHash(uint64_t hash, uint32_t num_bins) {
  return static_cast<uint32_t>(
      (static_cast<unsigned __int128>(hash) * num_bins) >> 64);
}

// The secret-handling core of PartitionSlabByBin: tags every key(8) | value record
// with its (secret) target bin under the keyed partition hash and obliviously sorts
// by the tag. Returns the tagged slab (layout bin(4) | pad(4) | key(8) | value) in
// bin order. Standalone -- rather than folded into PartitionSlabByBin -- so the
// binary-level taint verifier (tools/ct_dataflow.py) can audit exactly the compiled
// form of the secret-dependent region, without the public boundary split that
// legitimately branches on the (declassified-by-contract) sorted tags.
// `sort_strategy` selects the oblivious sort implementation; the bucket strategy is
// eligible here because the tags are a fresh keyed hash of distinct store keys, so
// the bin multiset is simulatable from (n, num_bins). Ties within a bin break by the
// (secret) record key, making the output order total and strategy-independent.
ByteSlab TagAndSortByBin(const ByteSlab& records, const SipKey& partition_key,
                         uint32_t num_bins, size_t value_size, int sort_threads,
                         SortStrategy sort_strategy = SortStrategy::kBitonic,
                         uint32_t lambda = 40);

// Obliviously partitions `records` -- a slab of key(8) | value(value_size) records --
// into `num_bins` partitions under the secret keyed partition hash. Returns one slab
// per bin in the store layout (key(8) | value), ready for SubOramBackend::Initialize.
// Cost O(n log^2 n) oblivious sort; the per-record tag assignment and the sort run
// inside an audited oblivious region, the boundary split is public by the partition-
// size argument above.
std::vector<ByteSlab> PartitionSlabByBin(const ByteSlab& records, const SipKey& partition_key,
                                         uint32_t num_bins, size_t value_size,
                                         int sort_threads,
                                         SortStrategy sort_strategy = SortStrategy::kBitonic,
                                         uint32_t lambda = 40);

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_RESHARD_H_
