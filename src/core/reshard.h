// Oblivious key-space redistribution (epoch-boundary resharding).
//
// Changing the number of subORAMs moves every object: the partition function is a
// secret keyed hash of the object key, so which objects move -- and where -- is
// secret. Redistribution therefore runs the same oblivious machinery as the paper's
// LoadBalancer.Initialize (Appendix B, Figure 23): tag each record with its (secret)
// target partition, obliviously sort by the tag, and split at the *public* partition
// boundaries (partition sizes are public: each subORAM receives its partition in the
// clear inside its enclave, exactly as at initial load).
//
// This is the shared helper behind both Snoopy::InitializeOblivious (initial load)
// and Snoopy::Reshard (live scale-up/scale-down); keeping the secret-handling loop in
// one lint-enforced file keeps bin placement over secret keys inside an audited
// oblivious region.

#ifndef SNOOPY_SRC_CORE_RESHARD_H_
#define SNOOPY_SRC_CORE_RESHARD_H_

#include <cstdint>
#include <vector>

#include "src/crypto/siphash.h"
#include "src/obl/slab.h"

namespace snoopy {

// Redistribution record layout: bin(4) | pad(4) | key(8) | value(value_size).
inline constexpr size_t kReshardHeaderBytes = 16;
inline constexpr size_t kReshardKeyOffset = 8;

// Obliviously partitions `records` -- a slab of key(8) | value(value_size) records --
// into `num_bins` partitions under the secret keyed partition hash. Returns one slab
// per bin in the store layout (key(8) | value), ready for SubOramBackend::Initialize.
// Cost O(n log^2 n) oblivious sort; the per-record tag assignment and the sort run
// inside an audited oblivious region, the boundary split is public by the partition-
// size argument above.
std::vector<ByteSlab> PartitionSlabByBin(const ByteSlab& records, const SipKey& partition_key,
                                         uint32_t num_bins, size_t value_size,
                                         int sort_threads);

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_RESHARD_H_
