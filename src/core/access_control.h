// Access control via recursive Snoopy lookups (paper Appendix D).
//
// The access-control matrix is itself stored obliviously: each rule
// (user, object, op) -> allowed is an object in a dedicated Snoopy instance, keyed by a
// keyed hash of the tuple. Serving an epoch then takes two Snoopy epochs: first the
// load balancer obliviously fetches the verdict for every pending request (reads of the
// rule store -- the rule store never learns which rules were consulted), then the data
// epoch runs with each request's `granted` bit set. A denied read returns null; a
// denied write is dropped inside the subORAM's oblivious compare-and-set, so execution
// never reveals which requests were permitted.

#ifndef SNOOPY_SRC_CORE_ACCESS_CONTROL_H_
#define SNOOPY_SRC_CORE_ACCESS_CONTROL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/snoopy.h"

namespace snoopy {

struct AccessRule {
  uint64_t user = 0;
  uint64_t object = 0;
  uint8_t op = kOpRead;  // the operation the rule permits
  bool allowed = false;
};

class AccessControlledSnoopy {
 public:
  AccessControlledSnoopy(const SnoopyConfig& data_config, const SnoopyConfig& acl_config,
                         uint64_t seed);

  // Loads both stores. Every (user, object, op) combination not covered by a rule is
  // denied (deny-by-default). All data object keys must be < kDummyKeyBase.
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects,
                  const std::vector<AccessRule>& rules);

  void SubmitRead(uint64_t user, uint64_t client_seq, uint64_t key);
  void SubmitWrite(uint64_t user, uint64_t client_seq, uint64_t key,
                   std::span<const uint8_t> value);

  // Runs the access-control epoch followed by the data epoch (Appendix D: "executing
  // requests with access control now requires two epochs").
  std::vector<ClientResponse> RunEpoch();

  Snoopy& data_store() { return *data_; }

 private:
  uint64_t RuleKey(uint64_t user, uint64_t object, uint8_t op) const;

  struct PendingRequest {
    uint64_t user;
    uint64_t client_seq;
    uint64_t key;
    uint8_t op;
    std::vector<uint8_t> value;
  };

  SipKey rule_hash_key_{};
  std::unique_ptr<Snoopy> data_;
  std::unique_ptr<Snoopy> acl_;
  std::vector<PendingRequest> pending_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_ACCESS_CONTROL_H_
