// The throughput-optimized subORAM (paper section 5, Figure 7).
//
// A subORAM stores one partition of the object store and processes *batches* of
// distinct-key requests. Instead of a polylogarithmic per-request structure it:
//   1. builds a two-tier oblivious hash table over the incoming batch (re-keyed per
//      batch),
//   2. makes one linear scan over every stored object, scanning the object's two
//      candidate buckets in full and applying oblivious compare-and-sets in both
//      directions (so reads and writes are indistinguishable), and
//   3. obliviously compacts the hash table back into a batch of responses.
// Amortized over a large batch, the single scan is concretely cheaper in the enclave
// setting than polylog ORAM accesses -- that is the paper's core subORAM insight.
//
// Write-back semantics: a write stores its payload and its response carries the
// *previous* value, which is what makes the load balancer's response propagation give
// same-epoch readers the pre-state (reads serialize before writes inside a batch,
// paper Appendix C).

#ifndef SNOOPY_SRC_CORE_SUBORAM_H_
#define SNOOPY_SRC_CORE_SUBORAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/request.h"
#include "src/core/suboram_backend.h"
#include "src/crypto/rng.h"
#include "src/enclave/rollback.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/slab.h"

namespace snoopy {

struct SubOramConfig {
  uint32_t id = 0;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
  int sort_threads = 1;
  // Strategy for the hash-table construction sorts (the batch-processing critical
  // path). Both OHT sorts are bucket-eligible: the batch carries distinct keys and
  // bins are fresh keyed hashes, so the bin multiset is simulatable.
  SortStrategy sort_strategy = SortStrategy::kBitonic;
  // Enclave threads for the linear scan (paper Figure 13b). Threads take disjoint
  // object ranges; hash-table buckets are guarded by per-bucket locks since the
  // oblivious compare-and-set writes every scanned slot unconditionally.
  int scan_threads = 1;
  // Verify the batch-distinctness precondition (Definition 2) before processing. The
  // load balancer guarantees it; standalone users should leave the check on.
  bool check_distinct = true;
};

class SubOram : public SubOramBackend {
 public:
  SubOram(const SubOramConfig& config, uint64_t rng_seed);

  // Loads the partition. Keys must be distinct and < kDummyKeyBase.
  void Initialize(ByteSlab&& objects);
  // Convenience: build the slab from (key, value) pairs.
  void Initialize(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) override;

  size_t num_objects() const override { return store_.size(); }
  size_t value_size() const { return config_.value_size; }

  // Executes one batch (Figure 7). Consumes the batch, returns exactly batch.size()
  // response records (the dummy requests' responses included -- the load balancer
  // compacts those away). Throws std::invalid_argument if the batch contains duplicate
  // keys and checking is enabled; throws std::runtime_error on the
  // negligible-probability hash-table construction abort.
  RequestBatch ProcessBatch(RequestBatch&& batch) override;

  // Direct (non-batched) read used by tests and the recursive access-control store to
  // inspect state between epochs. Not oblivious; never called on the request path.
  bool DebugRead(uint64_t key, std::vector<uint8_t>* value_out) const;

  // Rollback-protected persistence (paper section 9): seals the partition to a
  // counter-bound snapshot (one trusted-counter bump per call) and restores it only if
  // it is the freshest snapshot ever sealed.
  bool SupportsSealing() const override { return true; }
  std::vector<uint8_t> SealState(SealedStore& store, uint64_t counter_id) const override;
  UnsealStatus RestoreState(SealedStore& store, uint64_t counter_id,
                            std::span<const uint8_t> blob) override;

  // Partition export for resharding: a copy of the flat store (key(8) | value).
  bool SupportsExport() const override { return true; }
  ByteSlab ExportSlab() const override { return store_; }

 private:
  SubOramConfig config_;
  Rng rng_;
  // Flat object store: key(8) | value(value_size) per record.
  ByteSlab store_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_SUBORAM_H_
