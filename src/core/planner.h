// The Snoopy planner (paper section 6): given a data size, a minimum throughput and a
// maximum average latency, choose the number of load balancers and subORAMs that
// minimizes monthly cost.
//
// The planner implements the paper's three relations:
//   (1)  T >= max[ L_LB(X*T/L, S),  L * L_S(f(X*T/L, S), N/S) ]   (pipelined epoch)
//   (2)  Latency <= 5T/2                                           (avg wait + 2 stages)
//   (3)  Cost = L * C_LB + S * C_S
// where T is the epoch length, X the offered load, L/S the machine counts, and f the
// Theorem 3 batch bound. Service-time functions come from a calibrated cost model
// (src/sim/cost_model.h) injected as callables, mirroring how the paper's planner
// consumes microbenchmark data.

#ifndef SNOOPY_SRC_CORE_PLANNER_H_
#define SNOOPY_SRC_CORE_PLANNER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace snoopy {

struct PlannerCostFns {
  // Seconds for one load balancer to prepare + match R requests across S subORAMs.
  std::function<double(uint64_t r, uint64_t s)> lb_seconds;
  // Seconds for one subORAM holding n objects to process one batch of `batch` requests.
  std::function<double(uint64_t batch, uint64_t n)> suboram_seconds;
};

struct PlannerInput {
  uint64_t num_objects = 0;
  double min_throughput = 0;   // requests/second the deployment must sustain
  double max_latency_s = 1.0;  // maximum average response latency
  uint32_t lambda = 128;
  uint32_t max_load_balancers = 32;
  uint32_t max_suborams = 64;
  // Azure DCsv2 pricing the paper's evaluation used (DC4s_v2, USD/month).
  double lb_cost_per_month = 294.0;
  double suboram_cost_per_month = 294.0;
};

struct PlannerResult {
  bool feasible = false;
  uint32_t load_balancers = 0;
  uint32_t suborams = 0;
  double epoch_seconds = 0;
  double avg_latency_s = 0;
  double cost_per_month = 0;
};

// Smallest epoch length T <= t_max with max(LB stage, subORAM stage) <= T for the
// given configuration, or a negative value if none exists.
double MinFeasibleEpoch(const PlannerInput& input, const PlannerCostFns& fns,
                        uint32_t load_balancers, uint32_t suborams, double t_max);

// Exhaustive search over (L, S) minimizing Equation (3) subject to (1) and (2).
PlannerResult PlanConfiguration(const PlannerInput& input, const PlannerCostFns& fns);

// Piecewise-constant load forecast point: offered load from `start_s` on.
struct LoadForecastPoint {
  double start_s = 0;
  double ops_per_second = 0;
};

// One step of an elastic deployment plan: run `plan` from `start_s` until the next
// step. Consecutive forecast phases whose planned (L, S) agree are merged, so each
// step boundary is a real reshard (the step's `suborams` feeds Snoopy::Reshard and
// the cluster simulator's reshard_schedule).
struct ElasticPlanStep {
  double start_s = 0;
  double offered_load = 0;  // the highest forecast load the step must sustain
  PlannerResult plan;
};

// Elastic capacity planning over a diurnal forecast: plan each phase independently
// at its offered load, then merge consecutive phases with identical machine counts.
// Infeasible phases are kept as steps with plan.feasible == false so callers can see
// where the forecast exceeds the search bounds.
std::vector<ElasticPlanStep> PlanElasticSchedule(
    const PlannerInput& input, const PlannerCostFns& fns,
    const std::vector<LoadForecastPoint>& forecast);

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_PLANNER_H_
