#include "src/core/load_balancer.h"

#include <cstring>
#include <stdexcept>

#include "src/analysis/batch_bound.h"
#include "src/core/reshard.h"
#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/kernels.h"
#include "src/obl/parallel.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/telemetry/tracing.h"

namespace snoopy {

LoadBalancer::LoadBalancer(const LoadBalancerConfig& config, const SipKey& partition_key,
                           uint64_t rng_seed)
    : config_(config), partition_key_(partition_key), rng_(rng_seed) {}

uint32_t LoadBalancer::SubOramOf(uint64_t key) const {
  // PartitionBinOfHash, not `%`: div latency depends on the secret-derived hash
  // (ct_dataflow rule B03), and resharding must agree with routing bin-for-bin.
  return PartitionBinOfHash(SipHash24(partition_key_, key), config_.num_suborams);
}

LoadBalancer::PreparedEpoch LoadBalancer::PrepareBatches(RequestBatch&& client_requests) {
  return PrepareBatches(std::move(client_requests), rng_.Next64());
}

LoadBalancer::PreparedEpoch LoadBalancer::PrepareBatches(RequestBatch&& client_requests,
                                                         uint64_t epoch_seed) {
  const uint64_t r = client_requests.size();
  const uint32_t s = config_.num_suborams;
  const uint64_t b = BatchSize(r, s, config_.lambda);

  // Step spans at public pipeline boundaries (request count r is network-visible,
  // batch size b is the padded f(R, S) of Theorem 3). Opened/closed outside the
  // oblivious regions.
  TraceSpan assign_trace(&Tracer::Global(), "step", "lb_assign");
  assign_trace.SetArg("requests", r);
  assign_trace.SetArg("batch", b);

  // SNOOPY_OBLIVIOUS_BEGIN(lb_prepare)
  // ct-public: i r kSeqMask
  // Figure 5 step 1: assign each request its subORAM and the scratch fields the
  // oblivious pipeline sorts on. The `order` encoding makes the survivor of each
  // duplicate group sort first: writes before reads, later writes before earlier ones
  // (last-write-wins, section 4.1). Computed branchlessly since op is secret.
  for (size_t i = 0; i < r; ++i) {
    RequestHeader& h = client_requests.Header(i);
    h.bin = SubOramOf(h.key);
    h.dummy = 0;
    h.resp = 0;
    const SecretBool is_write = SecretU64(h.op) == SecretU64(kOpWrite);
    // Survivor class (ascending priority): granted writes (latest first), granted
    // reads, denied writes, denied reads. Denied requests are no-ops at the subORAM,
    // so they must never be the survivor when any granted request exists -- otherwise
    // the whole duplicate group would see the subORAM's null response (section D).
    const SecretBool denied = !SecretBool::FromWord(h.granted);
    const SecretU64 cls = CtSelectU64(denied, 2, 0) | CtSelectU64(is_write, 0, 1);
    constexpr uint64_t kSeqMask = (uint64_t{1} << 61) - 1;
    const SecretU64 seq_part =
        CtSelectU64(is_write, (~SecretU64(h.client_seq)) & kSeqMask,
                    SecretU64(h.client_seq) & kSeqMask);
    StoreSecret(h.order, (cls << 61) | seq_part);
    h.dedup = h.key;
  }
  // SNOOPY_OBLIVIOUS_END(lb_prepare)
  assign_trace.End();

  PreparedEpoch epoch;
  epoch.batch_size = b;
  // Keep the originals (with bins) for response matching; headers + values copied.
  epoch.originals = RequestBatch(ByteSlab(client_requests.slab()), client_requests.value_size());

  // Figure 5 steps 2-4: pad, oblivious sort, oblivious dedup/mark, oblivious compact.
  // Dummy requests get unique keys in the reserved top half of the key space so the
  // subORAM's distinctness precondition keeps holding. The prefix is a splitmix64
  // finalizer over the epoch seed, so equal seeds give byte-identical batches.
  uint64_t mixed = epoch_seed + 0x9e3779b97f4a7c15ULL;
  mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
  mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
  const uint64_t dummy_prefix = (mixed ^ (mixed >> 31)) & 0xffffffffULL;
  uint64_t dummy_counter = 0;
  BinPlacementOptions options;
  options.num_bins = s;
  options.bin_capacity = static_cast<uint32_t>(b);
  options.dedup = true;
  // Inside an epoch this runs as a pool task: the sort width is clamped to the
  // task's thread budget so nested sort parallelism submits to the shared pool
  // instead of oversubscribing (the work-inflation bug). Standalone callers pass
  // through unclamped.
  options.sort_threads = PoolClampedThreads(config_.sort_threads);
  options.sort_strategy = config_.sort_strategy;
  // Pre-dedup request bins are NOT simulatable: duplicate client keys share a bin,
  // so the bin multiset would leak key multiplicity. This forces the bitonic path.
  options.bins_simulatable = false;
  options.lambda = config_.lambda;
  TraceSpan place_trace(&Tracer::Global(), "step", "lb_bin_placement");
  place_trace.SetArg("requests", r);
  place_trace.SetArg("bins", s);
  const BinPlacementResult placed = ObliviousBinPlacement(
      client_requests.slab(), kRequestBinSchema, options, [&](uint8_t* rec) {
        auto* h = reinterpret_cast<RequestHeader*>(rec);
        h->key = kDummyKeyBase | (dummy_prefix << 31) | dummy_counter;
        h->op = kOpRead;
        h->granted = 1;
        ++dummy_counter;
      });
  if (!placed.ok) {
    // Theorem 3: probability <= 2^-lambda. Retrying would leak; abort instead.
    throw std::runtime_error("load balancer batch bound overflow (negligible event)");
  }

  place_trace.End();

  // Split the m*z result into per-subORAM batches.
  TraceSpan split_trace(&Tracer::Global(), "step", "lb_split");
  const size_t record_bytes = client_requests.record_bytes();
  for (uint32_t so = 0; so < s; ++so) {
    ByteSlab slice(static_cast<size_t>(b), record_bytes);
    if (b > 0) {
      std::memcpy(slice.data(), client_requests.slab().data() + so * b * record_bytes,
                  b * record_bytes);
    }
    epoch.suboram_batches.emplace_back(std::move(slice), client_requests.value_size());
  }
  return epoch;
}

RequestBatch LoadBalancer::MatchResponses(PreparedEpoch&& epoch,
                                          std::vector<RequestBatch>&& responses) {
  const size_t value_size = epoch.originals.value_size();
  const size_t r = epoch.originals.size();

  // Figure 6 step 1: merge subORAM responses and original requests into one slab.
  TraceSpan merge_trace(&Tracer::Global(), "step", "lb_match_merge");
  merge_trace.SetArg("requests", r);
  RequestBatch merged(value_size);
  for (RequestBatch& resp_batch : responses) {
    for (size_t i = 0; i < resp_batch.size(); ++i) {
      merged.Append(resp_batch.Header(i),
                    std::span<const uint8_t>(resp_batch.Value(i), value_size));
    }
  }
  for (size_t i = 0; i < r; ++i) {
    merged.Append(epoch.originals.Header(i),
                  std::span<const uint8_t>(epoch.originals.Value(i), value_size));
  }
  TraceRecord(TraceOp::kAppend, merged.size(), 0);
  merge_trace.End();

  // The sort and propagate spans bracket code *inside* the oblivious region, so
  // their call names are ct-public-annotated below (lint rule CT010): the spans
  // record only the public merged size and wall-clock boundaries of whole-region
  // steps, never anything derived from record contents.
  TraceSpan sort_trace(&Tracer::Global(), "step", "lb_match_sort");
  sort_trace.SetArg("records", merged.size());

  // Clamped to the pool task's thread budget (public scheduling metadata) before
  // entering the oblivious region, same as PrepareBatches above.
  const int sort_threads = PoolClampedThreads(config_.sort_threads);

  // SNOOPY_OBLIVIOUS_BEGIN(lb_match)
  // ct-public: i total value_size TraceSpan SetArg sort_threads
  // Figure 6 step 2: oblivious sort by object id, responses before requests. This
  // goes through the plain (no-bin-spec) strategy entry point: the sort key is the
  // secret object id, there is no public bin structure, so no bucket assignment can
  // be safe here and the entry point always takes the bitonic path.
  ObliviousSortSlab(
      merged.slab(),
      [](const uint8_t* a, const uint8_t* b) {
        const auto* ha = reinterpret_cast<const RequestHeader*>(a);
        const auto* hb = reinterpret_cast<const RequestHeader*>(b);
        // Secondary word: responses (resp=1) first, then requests by arrival order.
        // CtSelect, not ?:, because the flag is secret once records start moving.
        const SecretU64 wa = CtSelectU64(SecretBool::FromWord(ha->resp), 0,
                                         SecretU64((uint64_t{1} << 63) | ha->order));
        const SecretU64 wb = CtSelectU64(SecretBool::FromWord(hb->resp), 0,
                                         SecretU64((uint64_t{1} << 63) | hb->order));
        const SecretU64 ka(ha->key);
        const SecretU64 kb(hb->key);
        return (ka < kb) | ((ka == kb) & (wa < wb));
      },
      config_.sort_strategy, sort_threads);
  sort_trace.End();
  TraceSpan propagate_trace(&Tracer::Global(), "step", "lb_match_propagate");

  // Figure 6 step 3: propagate response payloads forward onto the request records. A
  // request whose own access-control verdict was "deny" receives null even when it was
  // deduplicated with a granted request for the same object (Appendix D).
  std::vector<uint8_t> prev_value(value_size, 0);
  const std::vector<uint8_t> zeros(value_size, 0);
  SecretU64 prev_key = ~uint64_t{0};
  const size_t total = merged.size();
  std::vector<uint8_t> keep(total, 0);
  for (size_t i = 0; i < total; ++i) {
    TraceRecord(TraceOp::kRead, i);
    RequestHeader& h = merged.Header(i);
    uint8_t* value = merged.Value(i);
    const SecretBool is_resp = SecretBool::FromWord(h.resp);
    KernelCondCopyBytes(is_resp, prev_value.data(), value, value_size);
    prev_key = CtSelectU64(is_resp, h.key, prev_key);
    const SecretBool take = (!is_resp) & (SecretU64(h.key) == prev_key);
    KernelCondCopyBytes(take, value, prev_value.data(), value_size);
    KernelCondCopyBytes(take & !SecretBool::FromWord(h.granted), value, zeros.data(),
                        value_size);
    keep[i] = (!is_resp).ToFlagByte();
    // Mark whether this request actually met a response. In a healthy epoch every
    // original does; when a partition is unavailable its placeholder batch carries
    // reserved keys that match nothing, so those requests keep resp = 0 -- the flag
    // the orchestrator's epoch-queue failover keys on. Unconditional branchless store
    // (keep[] above already latched the pre-store response/request distinction).
    h.resp = static_cast<uint8_t>(h.resp | take.ToFlagByte());
  }
  // SNOOPY_OBLIVIOUS_END(lb_match)
  propagate_trace.End();

  // Figure 6 step 4: compact the responses (and dummy responses) away; what remains is
  // exactly one answered record per original client request.
  TraceSpan compact_trace(&Tracer::Global(), "step", "lb_match_compact");
  const size_t kept = GoodrichCompact(merged.slab(), std::span<uint8_t>(keep.data(), total));
  if (kept != r) {
    throw std::runtime_error("response matching invariant violated");
  }
  merged.slab().Truncate(r);
  return merged;
}

}  // namespace snoopy
