// The Snoopy oblivious object store (paper sections 3-5): L load balancers, S
// subORAMs, epoch-batched execution, linearizable semantics.
//
// This is the functional, single-process deployment: every component runs the real
// oblivious algorithms and real encrypted channels; only machine boundaries are
// simulated (see DESIGN.md). The discrete-event cluster model in src/sim reuses this
// class's cost structure for the multi-machine throughput figures.
//
// Epoch flow (one call to RunEpoch):
//   1. each load balancer independently turns its pending client requests into S
//      equal-sized batches (Figure 5),
//   2. every subORAM executes the load balancers' batches in a fixed order
//      (load-balancer id), which with reads-before-writes inside a batch yields the
//      linearization of Appendix C,
//   3. each load balancer matches responses back to its clients (Figure 6).

#ifndef SNOOPY_SRC_CORE_SNOOPY_H_
#define SNOOPY_SRC_CORE_SNOOPY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/core/load_balancer.h"
#include "src/core/request.h"
#include "src/core/suboram.h"
#include "src/core/suboram_backend.h"
#include "src/crypto/rng.h"
#include "src/enclave/enclave.h"
#include "src/net/channel.h"
#include "src/net/network.h"

namespace snoopy {

struct SnoopyConfig {
  uint32_t num_load_balancers = 1;
  uint32_t num_suborams = 1;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
  int sort_threads = 1;
  bool check_distinct = true;
  // Partition the initial data with an oblivious sort, as in the paper's
  // LoadBalancer.Initialize (Appendix B, Figure 23). Costs O(n log^2 n); the default
  // plain partition is appropriate when the data owner loads their own data.
  bool oblivious_init = false;
};

struct ClientResponse {
  uint64_t client_id = 0;
  uint64_t client_seq = 0;
  uint64_t key = 0;
  uint8_t op = kOpRead;
  std::vector<uint8_t> value;
};

class Snoopy {
 public:
  Snoopy(const SnoopyConfig& config, uint64_t seed);
  // Deploys with a custom subORAM backend (paper section 3.1 / Figure 10, e.g. the
  // Oblix backend in src/baseline/oblix_backend.h). The default constructor uses the
  // throughput-optimized SubOram.
  Snoopy(const SnoopyConfig& config, uint64_t seed, const SubOramBackendFactory& factory);

  // The network handlers capture `this`; the instance must stay put.
  Snoopy(const Snoopy&) = delete;
  Snoopy& operator=(const Snoopy&) = delete;

  // Loads the object store, partitioning objects across subORAMs with the secret
  // keyed hash. Keys must be distinct and < kDummyKeyBase.
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  // Enqueues a request into the current epoch at a uniformly random load balancer
  // (the paper's client behaviour, section 4.3); the *WithLb variants pin the load
  // balancer, which tests use to exercise cross-balancer interleavings.
  void SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                   std::span<const uint8_t> value);
  void SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value);
  // Fully-specified submission (used by the access-control layer to attach verdicts).
  void SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value);

  // Executes one epoch over everything enqueued and returns all responses. Reads in an
  // epoch observe the state before that epoch's writes at the same load balancer;
  // across load balancers, batches apply in load-balancer-id order.
  std::vector<ClientResponse> RunEpoch();

  uint64_t epoch() const { return epoch_; }
  size_t pending_requests() const;
  const SnoopyConfig& config() const { return config_; }
  const Network& network() const { return network_; }
  Network& network_mutable() { return network_; }

  // --- Encrypted client sessions (used by SnoopyClient; paper section 3.1) --------
  // Registers an attested client: verifies the quote and establishes one encrypted
  // link per load balancer. Registered clients' responses are sealed into a per-client
  // mailbox instead of being returned from RunEpoch.
  void RegisterClient(uint64_t client_id, const AttestationQuote& client_quote);
  const AttestationQuote& lb_quote(uint32_t lb) const { return lb_enclaves_[lb]->quote(); }
  // The shared in-process link objects (client and balancer ends share counters).
  SecureLink& client_link(uint64_t client_id, uint32_t lb);
  // Drains the client's mailbox: [lb id (4 bytes) | sealed response] blobs.
  std::vector<std::vector<uint8_t>> TakeMailbox(uint64_t client_id);

  // Test/inspection access.
  SubOramBackend& suboram(size_t i) { return *suborams_[i]; }
  uint32_t SubOramOf(uint64_t key) const { return lbs_[0]->SubOramOf(key); }

 private:
  void InitializeOblivious(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);
  std::vector<uint8_t> SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                              std::span<const uint8_t> sealed);

  SnoopyConfig config_;
  Rng rng_;
  SipKey partition_key_;
  uint64_t epoch_ = 0;

  std::vector<std::unique_ptr<Enclave>> lb_enclaves_;
  std::vector<std::unique_ptr<Enclave>> so_enclaves_;
  std::vector<std::unique_ptr<LoadBalancer>> lbs_;
  std::vector<std::unique_ptr<SubOramBackend>> suborams_;
  // links_[lb][so]: encrypted link between load balancer lb and subORAM so.
  std::vector<std::vector<std::unique_ptr<SecureLink>>> links_;
  Network network_;

  std::vector<RequestBatch> pending_;  // one accumulation buffer per load balancer

  struct ClientSession {
    std::vector<std::unique_ptr<SecureLink>> links;  // one per load balancer
    std::vector<std::vector<uint8_t>> mailbox;       // sealed responses
  };
  std::map<uint64_t, ClientSession> clients_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_SNOOPY_H_
