// The Snoopy oblivious object store (paper sections 3-5): L load balancers, S
// subORAMs, epoch-batched execution, linearizable semantics.
//
// This is the functional, single-process deployment: every component runs the real
// oblivious algorithms and real encrypted channels; only machine boundaries are
// simulated (see DESIGN.md). The discrete-event cluster model in src/sim reuses this
// class's cost structure for the multi-machine throughput figures.
//
// Epoch flow (one call to RunEpoch):
//   1. each load balancer independently turns its pending client requests into S
//      equal-sized batches (Figure 5),
//   2. every subORAM executes the load balancers' batches in a fixed order
//      (load-balancer id), which with reads-before-writes inside a batch yields the
//      linearization of Appendix C,
//   3. each load balancer matches responses back to its clients (Figure 6).

#ifndef SNOOPY_SRC_CORE_SNOOPY_H_
#define SNOOPY_SRC_CORE_SNOOPY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "src/core/load_balancer.h"
#include "src/core/request.h"
#include "src/core/suboram.h"
#include "src/core/suboram_backend.h"
#include "src/crypto/rng.h"
#include "src/enclave/enclave.h"
#include "src/enclave/rollback.h"
#include "src/net/channel.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/retry.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracing.h"

namespace snoopy {

// Redundant sealed-state striping (durable repair after permanent machine loss).
// At every epoch seal each subORAM's counter-bound sealed snapshot is striped to peer
// subORAMs over the message network; when a machine is permanently lost, the repair
// coordinator reconstructs its partition on a spare node from the surviving stripes
// over a fixed, public number of epochs (the repair rate is a function of snapshot
// geometry only, never of the request pattern -- the Cloak-style fixed temporal
// distribution argument).
struct StripingConfig {
  // Peer count holding redundant state per partition. 0 disables striping: a
  // permanently lost partition is then unrecoverable and RunEpoch throws.
  // Replication mode (xor_parity = false): each of the `replicas` successor peers
  // holds a full copy of the sealed snapshot (storage overhead = replicas).
  // Parity mode (xor_parity = true): the snapshot splits into `replicas` data chunks
  // on `replicas` peers plus one XOR parity chunk on a further peer (storage
  // overhead = 1/replicas; survives any single peer loss).
  uint32_t replicas = 0;
  bool xor_parity = false;
  // Public repair schedule: a lost partition is reconstructed over exactly this many
  // epochs, one fixed-size slice per epoch (slice size = total stripe bytes /
  // repair_epochs, a public function of the snapshot size).
  uint32_t repair_epochs = 4;
};

struct SnoopyConfig {
  uint32_t num_load_balancers = 1;
  uint32_t num_suborams = 1;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
  int sort_threads = 1;
  // Oblivious sort strategy for the hot sorts (subORAM hash-table construction,
  // reshard partitioning). kAuto picks bitonic vs bucket per call site from the cost
  // model's crossover; SNOOPY_SORT_STRATEGY overrides at runtime. Sites whose bin
  // tags are not simulatable (the load balancer's pre-dedup and match sorts) always
  // run bitonic regardless. Both strategies yield identical responses and traces
  // that are thread-count-invariant per strategy; see DESIGN.md "Oblivious sorting".
  SortStrategy sort_strategy = SortStrategy::kAuto;
  // Worker threads for the epoch pipeline (Figure 9a's scaling claim needs the
  // orchestrator off the critical path): phase 1 prepares load-balancer batches
  // concurrently, phase 2 runs one worker per subORAM (each applying its batches in
  // load-balancer order, preserving the Appendix C linearization per subORAM), and
  // phase 3 matches responses concurrently per load balancer. 1 (default) is fully
  // sequential. Any setting produces identical client responses and, with per-thread
  // trace buffers merged in public-id order, byte-identical enclave traces; see
  // DESIGN.md "Threading model".
  int epoch_threads = 1;
  bool check_distinct = true;
  // Partition the initial data with an oblivious sort, as in the paper's
  // LoadBalancer.Initialize (Appendix B, Figure 23). Costs O(n log^2 n); the default
  // plain partition is appropriate when the data owner loads their own data.
  bool oblivious_init = false;
  // Governs every load-balancer-to-subORAM call: transient faults (drops, lost or
  // corrupted replies) are retried with backoff until the deadline; a crashed subORAM
  // is recovered (sealed-snapshot restore + epoch replay) between attempts.
  RetryPolicy retry;
  // Redundant sealed-state striping + background repair (see StripingConfig above).
  // Requires num_suborams > replicas (+1 in parity mode): peers hold the stripes.
  StripingConfig striping;
};

// Thrown by Reshard when a participant fails at the reshard boundary. The old
// configuration is left fully intact (build-then-swap), so the caller recovers the
// crashed component as usual and may retry at a later epoch boundary.
class ReshardAbortedError : public std::runtime_error {
 public:
  explicit ReshardAbortedError(const std::string& what) : std::runtime_error(what) {}
};

struct ClientResponse {
  uint64_t client_id = 0;
  uint64_t client_seq = 0;
  uint64_t key = 0;
  uint8_t op = kOpRead;
  std::vector<uint8_t> value;
};

class Snoopy {
 public:
  Snoopy(const SnoopyConfig& config, uint64_t seed);
  // Deploys with a custom subORAM backend (paper section 3.1 / Figure 10, e.g. the
  // Oblix backend in src/baseline/oblix_backend.h). The default constructor uses the
  // throughput-optimized SubOram.
  Snoopy(const SnoopyConfig& config, uint64_t seed, const SubOramBackendFactory& factory);

  // The network handlers capture `this`; the instance must stay put.
  Snoopy(const Snoopy&) = delete;
  Snoopy& operator=(const Snoopy&) = delete;

  // Loads the object store, partitioning objects across subORAMs with the secret
  // keyed hash. Keys must be distinct and < kDummyKeyBase.
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  // Enqueues a request into the current epoch at a uniformly random load balancer
  // (the paper's client behaviour, section 4.3); the *WithLb variants pin the load
  // balancer, which tests use to exercise cross-balancer interleavings.
  void SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                   std::span<const uint8_t> value);
  void SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value);
  // Fully-specified submission (used by the access-control layer to attach verdicts).
  void SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value);

  // Executes one epoch over everything enqueued and returns all responses. Reads in an
  // epoch observe the state before that epoch's writes at the same load balancer;
  // across load balancers, batches apply in load-balancer-id order.
  std::vector<ClientResponse> RunEpoch();

  uint64_t epoch() const { return epoch_; }
  size_t pending_requests() const;
  const SnoopyConfig& config() const { return config_; }
  const Network& network() const { return network_; }
  Network& network_mutable() { return network_; }

  // --- Fault injection and crash recovery (paper sections 4.3 and 9) -------------
  // Attaches a chaos source (non-owning; nullptr detaches). While attached, RunEpoch
  // tolerates injected drops/duplicates/corruption via retransmit-with-dedup, polls
  // for epoch-boundary component crashes, and recovers crashed components: a load
  // balancer is rebuilt statelessly (it re-prepares its epoch deterministically from
  // the per-(lb, epoch) seed), a subORAM is restored from its freshest sealed
  // snapshot and replayed to its pre-crash position in the epoch. A snapshot that
  // fails rollback protection surfaces as RollbackDetectedError: stale state is never
  // served.
  void set_fault_injector(FaultInjector* injector);
  VirtualClock& clock() { return clock_; }

  // --- Telemetry (leakage-safe; see src/telemetry/metrics.h) ----------------------
  // Epoch phases are timed as spans (snoopy_epoch_seconds root, per-phase
  // snoopy_epoch_phase_seconds{phase=...} children) and public facts are counted:
  // requests, epochs, the public batch size f(R, S), retransmit-dedup hits, retries
  // and recoveries per endpoint/component, and the network's per-pair wire traffic.
  // Spans run off steady_clock normally and off the deterministic VirtualClock while
  // a fault injector is attached. Defaults to the process-wide registry; pass nullptr
  // to disable recording entirely (the disabled path is a handful of null checks).
  void set_metrics_registry(MetricsRegistry* registry) { metrics_ = registry; }
  MetricsRegistry* metrics_registry() const { return metrics_; }

  // Span tracer for the epoch pipeline (src/telemetry/tracing.h): epoch -> phase ->
  // task spans plus per-worker pool summaries, all derived from the public epoch
  // schedule. Defaults to the process-global tracer (a no-op unless enabled via
  // SNOOPY_TRACE or Tracer::Enable); pass nullptr to opt this instance out.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  // Host-side sealed snapshot storage (untrusted in the threat model). The test
  // harness uses the replace hook to play a malicious host replaying stale state;
  // recovery must then refuse with UnsealStatus::kRollback.
  const std::vector<uint8_t>& suboram_snapshot(uint32_t so) const { return so_snapshots_[so]; }
  void host_replace_snapshot(uint32_t so, std::vector<uint8_t> blob) {
    so_snapshots_[so] = std::move(blob);
  }

  // --- Encrypted client sessions (used by SnoopyClient; paper section 3.1) --------
  // Registers an attested client: verifies the quote and establishes one encrypted
  // link per load balancer. Registered clients' responses are sealed into a per-client
  // mailbox instead of being returned from RunEpoch.
  void RegisterClient(uint64_t client_id, const AttestationQuote& client_quote);
  const AttestationQuote& lb_quote(uint32_t lb) const { return lb_enclaves_[lb]->quote(); }
  // The shared in-process link objects (client and balancer ends share counters).
  SecureLink& client_link(uint64_t client_id, uint32_t lb);
  // Drains the client's mailbox: [lb id (4 bytes) | sealed response] blobs.
  std::vector<std::vector<uint8_t>> TakeMailbox(uint64_t client_id);

  // --- Permanent loss, striped redundancy, and background repair ------------------
  // A partition is kHealthy, or kRepairing after its machine was permanently lost
  // (NodeLost fault or LoseSubOram below). While repairing, its requests are deferred
  // back to the epoch queue (resp = 0 failover) and the repair coordinator fetches a
  // fixed-size stripe slice per epoch; after striping.repair_epochs epochs the
  // partition is reconstructed on a spare node and serves again.
  enum class PartitionHealth : uint8_t { kHealthy = 0, kRepairing = 1 };
  PartitionHealth partition_health(uint32_t so) const;
  uint32_t repair_epochs_remaining(uint32_t so) const;

  // Permanently loses subORAM `so` right now (test/bench hook; the stochastic path is
  // FaultProfile::node_loss*): backend contents, host snapshot, per-epoch caches and
  // the stripes it held for peers are all wiped. Throws std::runtime_error when
  // striping is disabled -- the partition would be unrecoverable. Call only at an
  // epoch boundary.
  void LoseSubOram(uint32_t so);

  // Epoch-boundary elastic resharding: gathers every partition (ExportSlab),
  // obliviously redistributes the key space over `new_num_suborams` bins through the
  // bin-placement sort machinery (src/core/reshard.h), and rebuilds subORAMs, load
  // balancers, links and rollback counters for the new width. Build-then-swap: any
  // failure (including an injected participant crash, surfaced as
  // ReshardAbortedError) leaves the old configuration fully intact. Requires every
  // partition healthy and a backend with export support. Call only at an epoch
  // boundary; pending requests and registered clients carry over.
  void Reshard(uint32_t new_num_suborams);

  // Host-side stripe storage (untrusted): the stripe peer `peer` holds for partition
  // `owner`. Tests use the replace hook to play a malicious host serving stale
  // stripes; repair must then refuse with RollbackDetectedError.
  struct HostStripe {
    uint64_t seal_counter = 0;  // counter value bound into the striped snapshot
    uint32_t chunk_index = 0;   // parity mode: data chunk index, or chunk_count = parity
    uint32_t chunk_count = 0;   // data chunks per snapshot (1 in replication mode)
    uint64_t blob_len = 0;      // sealed snapshot length before chunking
    std::vector<uint8_t> payload;
  };
  const HostStripe* host_stripe(uint32_t peer, uint32_t owner) const;
  void host_replace_stripe(uint32_t peer, uint32_t owner, HostStripe stripe);

  // Test/inspection access.
  SubOramBackend& suboram(size_t i) { return *suborams_[i]; }
  uint32_t SubOramOf(uint64_t key) const { return lbs_[0]->SubOramOf(key); }

 private:
  // Shared constructor body; factory_ must be set before calling.
  void Construct();
  void InitializeOblivious(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);
  std::vector<uint8_t> SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                              std::span<const uint8_t> payload);
  // Host-level stripe traffic (store / manifest / fetch) at peer `so`.
  std::vector<uint8_t> StripeEndpointHandler(uint32_t so, std::span<const uint8_t> payload);
  // Registers both network endpoints of subORAM so (batch execution + stripes).
  void RegisterSubOramEndpoints(uint32_t so);

  // Seeds load balancer lb's epoch preparation; equal (lb, epoch) means equal batches,
  // which is what lets a rebuilt load balancer re-prepare deterministically.
  uint64_t EpochSeed(uint32_t lb, uint64_t epoch) const;

  // Calls subORAM so with load balancer lb's prepared batch under the retry policy,
  // recovering the subORAM if it crashes mid-call. Returns the opened response batch.
  RequestBatch CallSubOram(uint32_t lb, uint32_t so,
                           const std::vector<LoadBalancer::PreparedEpoch>& prepared);
  // The underlying retried exchange: seals `serialized` into an epoch-tagged envelope
  // (lazily, re-sealing only when the link generation changes) and runs it under the
  // retry policy with crash recovery. Shared by the epoch loop and recovery replay.
  std::vector<uint8_t> RetriedSubOramCall(
      uint32_t lb, uint32_t so, const std::vector<uint8_t>& serialized,
      const std::vector<LoadBalancer::PreparedEpoch>* prepared);

  // Crash recovery. `prepared`/`lb_limit` drive the epoch replay: batches from load
  // balancers < lb_limit that the subORAM had already executed this epoch are re-sent
  // (its restored snapshot predates them). Pass nullptr/0 at an epoch boundary.
  void RecoverSubOram(uint32_t so, const std::vector<LoadBalancer::PreparedEpoch>* prepared,
                      uint32_t lb_limit);
  void RecoverLoadBalancer(uint32_t lb);
  void SealSubOramState(uint32_t so);

  // --- Striping + repair internals --------------------------------------------------
  // The successor peers holding partition so's stripes: replicas of them in
  // replication mode, replicas + 1 (the last holds the XOR parity chunk) in parity
  // mode.
  std::vector<uint32_t> StripePeers(uint32_t so) const;
  // Pushes partition so's current sealed snapshot to its stripe peers. Peers that are
  // themselves lost/repairing or unreachable are skipped (counted); redundancy
  // re-converges at their next healthy seal. Must run only after *every* partition
  // sealed this boundary, so a peer crash-recovery triggered by the push restores
  // post-epoch state with nothing to replay.
  void DistributeStripes(uint32_t so);
  // One stripe exchange under the retry policy with peer crash recovery.
  std::vector<uint8_t> RetriedStripeCall(uint32_t so, uint32_t peer,
                                         const std::vector<uint8_t>& request);
  PartitionHealth HealthOf(uint32_t so) const;
  // Marks so permanently lost: wipes its machine state and schedules repair.
  void OnPartitionLost(uint32_t so);
  // Runs at the start of RunEpoch for every repairing partition: fetches this epoch's
  // fixed-size slice (planning sources from peer manifests on the first step) and, on
  // the final step, reassembles + restores the snapshot and reincarnates the node.
  void RepairStep(uint32_t so);
  void PlanRepair(uint32_t so);
  void CompleteRepair(uint32_t so);
  // A batch of `batch_size` placeholder response records (resp = 1, reserved keys
  // matching no client request) standing in for an unavailable partition: response
  // matching compacts them away and the partition's real requests come back with
  // resp = 0, the requeue flag.
  RequestBatch PlaceholderBatch(uint64_t batch_size) const;

  // Span time source: the deterministic VirtualClock under fault injection (chaos
  // runs stay replayable), steady_clock otherwise.
  double NowSeconds() const;
  // Null when telemetry is disabled; otherwise the named phase-duration histogram.
  Histogram* PhaseHistogram(const char* phase) const;
  // Null when telemetry is disabled; otherwise the cached pool-metric handles for
  // one of the three pipeline phases. Resolved lazily against the current registry
  // (registry references are stable for its lifetime) and re-resolved whenever
  // set_metrics_registry swaps registries, so the per-epoch hot path never repeats
  // the name-keyed lookups.
  const PoolPhaseMetrics* PoolMetricsFor(const char* phase) const;
  // Cached handles for the epoch-level metrics RunEpoch touches every epoch (epoch
  // timer, epoch/request counters, phase-duration histograms, per-LB batch-size
  // histograms). Same registry-keyed lazy scheme as PoolMetricsFor; null when
  // telemetry is disabled. Resolution happens on the orchestrator thread at the
  // top of RunEpoch (the epoch span), so pool workers that read batch-size
  // handles mid-phase only ever see an already-filled cache.
  struct EpochMetricsCache {
    Histogram* epoch_seconds = nullptr;
    Counter* epochs_total = nullptr;
    Counter* requests_total = nullptr;
    Counter* degraded_epochs_total = nullptr;
    Counter* deferred_requests_total = nullptr;
    std::vector<Histogram*> phase_seconds;  // parallel to kCachedPhaseNames
    std::vector<Histogram*> batch_size;     // per load balancer at resolve time
  };
  const EpochMetricsCache* EpochMetrics() const;

  // Backend factory: owned for the default deployment, borrowed (must outlive this
  // instance -- Reshard creates backends long after construction) for custom ones.
  std::unique_ptr<SubOramBackendFactory> owned_factory_;
  const SubOramBackendFactory* factory_ = nullptr;

  SnoopyConfig config_;
  Rng rng_;
  // Guards rng_ during parallel phase 2: concurrent subORAM recoveries draw rekeying
  // material from the shared stream. Key *values* then depend on scheduling, but keys
  // only ever change ciphertext bytes, never message sizes, responses, or traces.
  std::mutex rng_mu_;
  SipKey partition_key_;
  uint64_t epoch_ = 0;

  std::vector<std::unique_ptr<Enclave>> lb_enclaves_;
  std::vector<std::unique_ptr<Enclave>> so_enclaves_;
  std::vector<std::unique_ptr<LoadBalancer>> lbs_;
  std::vector<std::unique_ptr<SubOramBackend>> suborams_;
  // links_[lb][so]: encrypted link between load balancer lb and subORAM so.
  std::vector<std::vector<std::unique_ptr<SecureLink>>> links_;
  Network network_;

  std::vector<RequestBatch> pending_;  // one accumulation buffer per load balancer

  // --- Robustness state -----------------------------------------------------------
  FaultInjector* fault_injector_ = nullptr;
  VirtualClock clock_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  Tracer* tracer_ = &Tracer::Global();
  // Lazy cache behind PoolMetricsFor: slot order lb_prepare, suboram_execute,
  // response_match; `pool_metrics_registry_` tags which registry the handles were
  // resolved against (null = unresolved).
  mutable PoolPhaseMetrics pool_phase_metrics_[3];
  mutable MetricsRegistry* pool_metrics_registry_ = nullptr;
  mutable EpochMetricsCache epoch_metrics_;
  mutable MetricsRegistry* epoch_metrics_registry_ = nullptr;
  std::vector<uint64_t> lb_base_seeds_;  // per-LB seed underlying EpochSeed

  // Rollback-protected persistence: one trusted counter per subORAM, snapshots kept
  // in (untrusted) host storage, resealed at every epoch boundary.
  MonotonicCounterService counters_;
  std::unique_ptr<SealedStore> sealed_store_;
  std::vector<uint64_t> so_counter_ids_;
  std::vector<std::vector<uint8_t>> so_snapshots_;

  // Per-subORAM, per-epoch host-side bookkeeping. The response cache deduplicates
  // retransmitted batches (a retransmission re-serves the cached sealed response
  // instead of re-executing, preserving Appendix C linearizability and leaking no new
  // memory trace); the executed set records which load balancers' batches have been
  // applied this epoch, which is exactly what crash recovery must replay. Bumping a
  // link generation invalidates sealed-but-unsent bytes after a rekey.
  std::vector<std::map<uint32_t, std::vector<uint8_t>>> so_response_cache_;
  std::vector<std::set<uint32_t>> so_executed_lbs_;
  std::vector<std::vector<uint64_t>> link_generation_;  // [lb][so]

  // --- Striping + repair state ------------------------------------------------------
  // Guards health/repair state: phase-2 workers read health and may mark a loss
  // mid-epoch; everything else runs on the orchestrator thread at epoch boundaries.
  mutable std::mutex health_mu_;
  std::vector<PartitionHealth> so_health_;
  struct RepairState {
    uint32_t epochs_remaining = 0;
    bool planned = false;
    // Fetch plan (from peer manifests): `needed[i]` = (peer, chunk_index) sources,
    // all chunks `chunk_len` bytes, reassembling a `blob_len`-byte snapshot sealed at
    // counter value `seal_counter`. `parity_substituted` is the data chunk index the
    // parity chunk stands in for (-1 if none).
    uint64_t seal_counter = 0;
    uint32_t chunk_count = 0;
    uint64_t blob_len = 0;
    uint64_t chunk_len = 0;
    int parity_substituted = -1;
    std::vector<std::pair<uint32_t, uint32_t>> needed;
    std::vector<std::vector<uint8_t>> buffers;  // fetched bytes, one per needed chunk
    uint64_t cursor = 0;                        // bytes fetched so far across chunks
  };
  std::vector<RepairState> so_repair_;
  // stripe_store_[peer][owner]: the host-side stripe peer `peer` holds for `owner`.
  // Only touched from the orchestrator thread (seal/distribute/repair at epoch
  // boundaries; the stripe endpoint handler runs inline on the caller's thread).
  std::vector<std::map<uint32_t, HostStripe>> stripe_store_;

  struct ClientSession {
    std::vector<std::unique_ptr<SecureLink>> links;  // one per load balancer
    std::vector<std::vector<uint8_t>> mailbox;       // sealed responses
  };
  std::map<uint64_t, ClientSession> clients_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_SNOOPY_H_
