// The Snoopy oblivious object store (paper sections 3-5): L load balancers, S
// subORAMs, epoch-batched execution, linearizable semantics.
//
// This is the functional, single-process deployment: every component runs the real
// oblivious algorithms and real encrypted channels; only machine boundaries are
// simulated (see DESIGN.md). The discrete-event cluster model in src/sim reuses this
// class's cost structure for the multi-machine throughput figures.
//
// Epoch flow (one call to RunEpoch):
//   1. each load balancer independently turns its pending client requests into S
//      equal-sized batches (Figure 5),
//   2. every subORAM executes the load balancers' batches in a fixed order
//      (load-balancer id), which with reads-before-writes inside a batch yields the
//      linearization of Appendix C,
//   3. each load balancer matches responses back to its clients (Figure 6).

#ifndef SNOOPY_SRC_CORE_SNOOPY_H_
#define SNOOPY_SRC_CORE_SNOOPY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "src/core/load_balancer.h"
#include "src/core/request.h"
#include "src/core/suboram.h"
#include "src/core/suboram_backend.h"
#include "src/crypto/rng.h"
#include "src/enclave/enclave.h"
#include "src/enclave/rollback.h"
#include "src/net/channel.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/retry.h"
#include "src/telemetry/metrics.h"

namespace snoopy {

struct SnoopyConfig {
  uint32_t num_load_balancers = 1;
  uint32_t num_suborams = 1;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
  int sort_threads = 1;
  // Worker threads for the epoch pipeline (Figure 9a's scaling claim needs the
  // orchestrator off the critical path): phase 1 prepares load-balancer batches
  // concurrently, phase 2 runs one worker per subORAM (each applying its batches in
  // load-balancer order, preserving the Appendix C linearization per subORAM), and
  // phase 3 matches responses concurrently per load balancer. 1 (default) is fully
  // sequential. Any setting produces identical client responses and, with per-thread
  // trace buffers merged in public-id order, byte-identical enclave traces; see
  // DESIGN.md "Threading model".
  int epoch_threads = 1;
  bool check_distinct = true;
  // Partition the initial data with an oblivious sort, as in the paper's
  // LoadBalancer.Initialize (Appendix B, Figure 23). Costs O(n log^2 n); the default
  // plain partition is appropriate when the data owner loads their own data.
  bool oblivious_init = false;
  // Governs every load-balancer-to-subORAM call: transient faults (drops, lost or
  // corrupted replies) are retried with backoff until the deadline; a crashed subORAM
  // is recovered (sealed-snapshot restore + epoch replay) between attempts.
  RetryPolicy retry;
};

struct ClientResponse {
  uint64_t client_id = 0;
  uint64_t client_seq = 0;
  uint64_t key = 0;
  uint8_t op = kOpRead;
  std::vector<uint8_t> value;
};

class Snoopy {
 public:
  Snoopy(const SnoopyConfig& config, uint64_t seed);
  // Deploys with a custom subORAM backend (paper section 3.1 / Figure 10, e.g. the
  // Oblix backend in src/baseline/oblix_backend.h). The default constructor uses the
  // throughput-optimized SubOram.
  Snoopy(const SnoopyConfig& config, uint64_t seed, const SubOramBackendFactory& factory);

  // The network handlers capture `this`; the instance must stay put.
  Snoopy(const Snoopy&) = delete;
  Snoopy& operator=(const Snoopy&) = delete;

  // Loads the object store, partitioning objects across subORAMs with the secret
  // keyed hash. Keys must be distinct and < kDummyKeyBase.
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  // Enqueues a request into the current epoch at a uniformly random load balancer
  // (the paper's client behaviour, section 4.3); the *WithLb variants pin the load
  // balancer, which tests use to exercise cross-balancer interleavings.
  void SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                   std::span<const uint8_t> value);
  void SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key);
  void SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value);
  // Fully-specified submission (used by the access-control layer to attach verdicts).
  void SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value);

  // Executes one epoch over everything enqueued and returns all responses. Reads in an
  // epoch observe the state before that epoch's writes at the same load balancer;
  // across load balancers, batches apply in load-balancer-id order.
  std::vector<ClientResponse> RunEpoch();

  uint64_t epoch() const { return epoch_; }
  size_t pending_requests() const;
  const SnoopyConfig& config() const { return config_; }
  const Network& network() const { return network_; }
  Network& network_mutable() { return network_; }

  // --- Fault injection and crash recovery (paper sections 4.3 and 9) -------------
  // Attaches a chaos source (non-owning; nullptr detaches). While attached, RunEpoch
  // tolerates injected drops/duplicates/corruption via retransmit-with-dedup, polls
  // for epoch-boundary component crashes, and recovers crashed components: a load
  // balancer is rebuilt statelessly (it re-prepares its epoch deterministically from
  // the per-(lb, epoch) seed), a subORAM is restored from its freshest sealed
  // snapshot and replayed to its pre-crash position in the epoch. A snapshot that
  // fails rollback protection surfaces as RollbackDetectedError: stale state is never
  // served.
  void set_fault_injector(FaultInjector* injector);
  VirtualClock& clock() { return clock_; }

  // --- Telemetry (leakage-safe; see src/telemetry/metrics.h) ----------------------
  // Epoch phases are timed as spans (snoopy_epoch_seconds root, per-phase
  // snoopy_epoch_phase_seconds{phase=...} children) and public facts are counted:
  // requests, epochs, the public batch size f(R, S), retransmit-dedup hits, retries
  // and recoveries per endpoint/component, and the network's per-pair wire traffic.
  // Spans run off steady_clock normally and off the deterministic VirtualClock while
  // a fault injector is attached. Defaults to the process-wide registry; pass nullptr
  // to disable recording entirely (the disabled path is a handful of null checks).
  void set_metrics_registry(MetricsRegistry* registry) { metrics_ = registry; }
  MetricsRegistry* metrics_registry() const { return metrics_; }

  // Host-side sealed snapshot storage (untrusted in the threat model). The test
  // harness uses the replace hook to play a malicious host replaying stale state;
  // recovery must then refuse with UnsealStatus::kRollback.
  const std::vector<uint8_t>& suboram_snapshot(uint32_t so) const { return so_snapshots_[so]; }
  void host_replace_snapshot(uint32_t so, std::vector<uint8_t> blob) {
    so_snapshots_[so] = std::move(blob);
  }

  // --- Encrypted client sessions (used by SnoopyClient; paper section 3.1) --------
  // Registers an attested client: verifies the quote and establishes one encrypted
  // link per load balancer. Registered clients' responses are sealed into a per-client
  // mailbox instead of being returned from RunEpoch.
  void RegisterClient(uint64_t client_id, const AttestationQuote& client_quote);
  const AttestationQuote& lb_quote(uint32_t lb) const { return lb_enclaves_[lb]->quote(); }
  // The shared in-process link objects (client and balancer ends share counters).
  SecureLink& client_link(uint64_t client_id, uint32_t lb);
  // Drains the client's mailbox: [lb id (4 bytes) | sealed response] blobs.
  std::vector<std::vector<uint8_t>> TakeMailbox(uint64_t client_id);

  // Test/inspection access.
  SubOramBackend& suboram(size_t i) { return *suborams_[i]; }
  uint32_t SubOramOf(uint64_t key) const { return lbs_[0]->SubOramOf(key); }

 private:
  void InitializeOblivious(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);
  std::vector<uint8_t> SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                              std::span<const uint8_t> payload);

  // Seeds load balancer lb's epoch preparation; equal (lb, epoch) means equal batches,
  // which is what lets a rebuilt load balancer re-prepare deterministically.
  uint64_t EpochSeed(uint32_t lb, uint64_t epoch) const;

  // Calls subORAM so with load balancer lb's prepared batch under the retry policy,
  // recovering the subORAM if it crashes mid-call. Returns the opened response batch.
  RequestBatch CallSubOram(uint32_t lb, uint32_t so,
                           const std::vector<LoadBalancer::PreparedEpoch>& prepared);
  // The underlying retried exchange: seals `serialized` into an epoch-tagged envelope
  // (lazily, re-sealing only when the link generation changes) and runs it under the
  // retry policy with crash recovery. Shared by the epoch loop and recovery replay.
  std::vector<uint8_t> RetriedSubOramCall(
      uint32_t lb, uint32_t so, const std::vector<uint8_t>& serialized,
      const std::vector<LoadBalancer::PreparedEpoch>* prepared);

  // Crash recovery. `prepared`/`lb_limit` drive the epoch replay: batches from load
  // balancers < lb_limit that the subORAM had already executed this epoch are re-sent
  // (its restored snapshot predates them). Pass nullptr/0 at an epoch boundary.
  void RecoverSubOram(uint32_t so, const std::vector<LoadBalancer::PreparedEpoch>* prepared,
                      uint32_t lb_limit);
  void RecoverLoadBalancer(uint32_t lb);
  void SealSubOramState(uint32_t so);

  // Span time source: the deterministic VirtualClock under fault injection (chaos
  // runs stay replayable), steady_clock otherwise.
  double NowSeconds() const;
  // Null when telemetry is disabled; otherwise the named phase-duration histogram.
  Histogram* PhaseHistogram(const char* phase) const;

  SnoopyConfig config_;
  Rng rng_;
  // Guards rng_ during parallel phase 2: concurrent subORAM recoveries draw rekeying
  // material from the shared stream. Key *values* then depend on scheduling, but keys
  // only ever change ciphertext bytes, never message sizes, responses, or traces.
  std::mutex rng_mu_;
  SipKey partition_key_;
  uint64_t epoch_ = 0;

  std::vector<std::unique_ptr<Enclave>> lb_enclaves_;
  std::vector<std::unique_ptr<Enclave>> so_enclaves_;
  std::vector<std::unique_ptr<LoadBalancer>> lbs_;
  std::vector<std::unique_ptr<SubOramBackend>> suborams_;
  // links_[lb][so]: encrypted link between load balancer lb and subORAM so.
  std::vector<std::vector<std::unique_ptr<SecureLink>>> links_;
  Network network_;

  std::vector<RequestBatch> pending_;  // one accumulation buffer per load balancer

  // --- Robustness state -----------------------------------------------------------
  FaultInjector* fault_injector_ = nullptr;
  VirtualClock clock_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  std::vector<uint64_t> lb_base_seeds_;  // per-LB seed underlying EpochSeed

  // Rollback-protected persistence: one trusted counter per subORAM, snapshots kept
  // in (untrusted) host storage, resealed at every epoch boundary.
  MonotonicCounterService counters_;
  std::unique_ptr<SealedStore> sealed_store_;
  std::vector<uint64_t> so_counter_ids_;
  std::vector<std::vector<uint8_t>> so_snapshots_;

  // Per-subORAM, per-epoch host-side bookkeeping. The response cache deduplicates
  // retransmitted batches (a retransmission re-serves the cached sealed response
  // instead of re-executing, preserving Appendix C linearizability and leaking no new
  // memory trace); the executed set records which load balancers' batches have been
  // applied this epoch, which is exactly what crash recovery must replay. Bumping a
  // link generation invalidates sealed-but-unsent bytes after a rekey.
  std::vector<std::map<uint32_t, std::vector<uint8_t>>> so_response_cache_;
  std::vector<std::set<uint32_t>> so_executed_lbs_;
  std::vector<std::vector<uint64_t>> link_generation_;  // [lb][so]

  struct ClientSession {
    std::vector<std::unique_ptr<SecureLink>> links;  // one per load balancer
    std::vector<std::vector<uint8_t>> mailbox;       // sealed responses
  };
  std::map<uint64_t, ClientSession> clients_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_SNOOPY_H_
