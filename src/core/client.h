// Client library (paper sections 3.1 and 4.3).
//
// Clients run on private machines, attest the load-balancer enclaves, and talk to a
// uniformly random load balancer over an authenticated encrypted channel -- the cloud
// sees only ciphertext and timing. This class is that client: request submission is a
// sealed message through the deployment's network layer, and responses come back
// sealed in a per-client mailbox after the epoch executes.

#ifndef SNOOPY_SRC_CORE_CLIENT_H_
#define SNOOPY_SRC_CORE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/snoopy.h"

namespace snoopy {

class SnoopyClient {
 public:
  // Attests against the deployment's load balancers and establishes per-balancer
  // encrypted channels. Throws if attestation fails.
  SnoopyClient(Snoopy& deployment, uint64_t client_id, uint64_t seed);

  // Sends one encrypted request to a random load balancer; it executes at the next
  // epoch. Returns the client sequence number.
  uint64_t Read(uint64_t key);
  uint64_t Write(uint64_t key, std::span<const uint8_t> value);

  struct Response {
    uint64_t client_seq;
    uint64_t key;
    std::vector<uint8_t> value;
  };
  // Opens everything in this client's mailbox (responses from executed epochs).
  std::vector<Response> FetchResponses();

  uint64_t client_id() const { return client_id_; }

 private:
  uint64_t Submit(uint64_t key, uint8_t op, std::span<const uint8_t> value);

  Snoopy& deployment_;
  uint64_t client_id_;
  Rng rng_;
  std::unique_ptr<Enclave> identity_;  // the client's attested identity envelope
  uint64_t next_seq_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_CLIENT_H_
