// Wire/record types shared by the Snoopy load balancer and subORAM.
//
// Every request, response, and dummy travels as one fixed-stride record: a 48-byte
// header (fields the oblivious algorithms sort/scan on) followed by a runtime-sized
// value payload. Fixed strides are what let the oblivious primitives move records as
// opaque byte blocks, and a common layout lets bin placement (load balancer, Fig. 5)
// and the two-tier hash table (subORAM, Fig. 7) share field offsets.
//
// Real client object keys must stay below 2^63: the top half of the key space is
// reserved for the dummy requests the load balancer fabricates, which need keys that
// are distinct from every real key (the subORAM's distinctness precondition,
// Definition 2) yet indistinguishable in handling.

#ifndef SNOOPY_SRC_CORE_REQUEST_H_
#define SNOOPY_SRC_CORE_REQUEST_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/obl/bin_placement.h"
#include "src/obl/hash_table.h"
#include "src/obl/slab.h"

namespace snoopy {

enum OpCode : uint8_t {
  kOpRead = 0,
  kOpWrite = 1,
};

// Keys at or above this value are reserved for load-balancer dummies.
inline constexpr uint64_t kDummyKeyBase = uint64_t{1} << 63;

#pragma pack(push, 1)
struct RequestHeader {
  uint64_t key = 0;         // offset 0: object id
  uint32_t bin = 0;         // offset 8: scratch — assigned subORAM / hash bucket
  uint8_t dummy = 0;        // offset 12: padding-dummy flag (the paper's tag bit b)
  uint8_t op = kOpRead;     // offset 13: OpCode
  uint8_t resp = 0;         // offset 14: 1 once this record carries a subORAM response
  uint8_t granted = 1;      // offset 15: access-control verdict (section D); 1 = allowed
  uint64_t order = 0;       // offset 16: scratch — oblivious sort tiebreak
  uint64_t dedup = 0;       // offset 24: scratch — duplicate-group key
  uint64_t client_id = 0;   // offset 32: requesting client, for response routing
  uint64_t client_seq = 0;  // offset 40: client-assigned sequence number
};
#pragma pack(pop)
static_assert(sizeof(RequestHeader) == 48, "header layout is part of the wire format");

// Field offsets handed to the generic oblivious routines.
inline constexpr BinSchema kRequestBinSchema{
    offsetof(RequestHeader, bin), offsetof(RequestHeader, dummy),
    offsetof(RequestHeader, order), offsetof(RequestHeader, dedup)};
inline constexpr OhtSchema kRequestOhtSchema{
    offsetof(RequestHeader, key), offsetof(RequestHeader, bin),
    offsetof(RequestHeader, dummy), offsetof(RequestHeader, order),
    offsetof(RequestHeader, dedup)};

// A batch of request records with a common value size.
class RequestBatch {
 public:
  static constexpr size_t kHeaderBytes = sizeof(RequestHeader);

  RequestBatch() : RequestBatch(0) {}
  explicit RequestBatch(size_t value_size)
      : value_size_(value_size), slab_(0, kHeaderBytes + value_size) {}
  RequestBatch(ByteSlab&& slab, size_t value_size)
      : value_size_(value_size), slab_(std::move(slab)) {}

  size_t size() const { return slab_.size(); }
  size_t value_size() const { return value_size_; }
  size_t record_bytes() const { return slab_.record_bytes(); }

  RequestHeader& Header(size_t i) { return *reinterpret_cast<RequestHeader*>(slab_.Record(i)); }
  const RequestHeader& Header(size_t i) const {
    return *reinterpret_cast<const RequestHeader*>(slab_.Record(i));
  }
  uint8_t* Value(size_t i) { return slab_.Record(i) + kHeaderBytes; }
  const uint8_t* Value(size_t i) const { return slab_.Record(i) + kHeaderBytes; }

  void Append(const RequestHeader& header, std::span<const uint8_t> value) {
    uint8_t* rec = slab_.AppendZero();
    std::memcpy(rec, &header, kHeaderBytes);
    if (!value.empty()) {
      std::memcpy(rec + kHeaderBytes, value.data(),
                  value.size() < value_size_ ? value.size() : value_size_);
    }
  }

  ByteSlab& slab() { return slab_; }
  const ByteSlab& slab() const { return slab_; }

  // Flat serialization for the encrypted channels: value_size(8) | count(8) | records.
  std::vector<uint8_t> Serialize() const;
  static RequestBatch Deserialize(std::span<const uint8_t> bytes);

 private:
  size_t value_size_;
  ByteSlab slab_;
};

inline std::vector<uint8_t> RequestBatch::Serialize() const {
  std::vector<uint8_t> out(16 + slab_.size() * slab_.record_bytes());
  const uint64_t vs = value_size_;
  const uint64_t count = slab_.size();
  std::memcpy(out.data(), &vs, 8);
  std::memcpy(out.data() + 8, &count, 8);
  if (count > 0) {
    std::memcpy(out.data() + 16, slab_.data(), slab_.size() * slab_.record_bytes());
  }
  return out;
}

inline RequestBatch RequestBatch::Deserialize(std::span<const uint8_t> bytes) {
  uint64_t vs = 0;
  uint64_t count = 0;
  std::memcpy(&vs, bytes.data(), 8);
  std::memcpy(&count, bytes.data() + 8, 8);
  RequestBatch batch(static_cast<size_t>(vs));
  ByteSlab slab(static_cast<size_t>(count), kHeaderBytes + static_cast<size_t>(vs));
  if (count > 0) {
    std::memcpy(slab.data(), bytes.data() + 16, slab.size() * slab.record_bytes());
  }
  return RequestBatch(std::move(slab), static_cast<size_t>(vs));
}

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_REQUEST_H_
