#include "src/core/reshard.h"

#include <cstring>
#include <stdexcept>

#include "src/obl/bitonic_sort.h"
#include "src/obl/primitives.h"

namespace snoopy {

ByteSlab TagAndSortByBin(const ByteSlab& records, const SipKey& partition_key,
                         uint32_t num_bins, size_t value_size, int sort_threads,
                         SortStrategy sort_strategy, uint32_t lambda) {
  const size_t n = records.size();
  const size_t stride = kReshardHeaderBytes + value_size;
  ByteSlab tagged(0, stride);

  // SNOOPY_OBLIVIOUS_BEGIN(reshard_partition)
  // ct-public: i n stride num_bins value_size tagged records
  // ct-public: sort_strategy sort_threads lambda
  // ct-calls: PartitionBinOfHash ObliviousSortSlabErased LoadSecretU64
  // Tag every record with its (secret) target partition and sort by the tag. The key
  // is secret inside the enclave; SipHash24 is the branchless keyed partition hash,
  // PartitionBinOfHash reduces it to a bin without a variable-latency divide, and
  // the sort comparator routes through the Secret taint types, so no branch or
  // index here depends on key material. Ties break by the (secret, distinct) record
  // key so both sort strategies produce the same total order.
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* src = records.Record(i);
    uint8_t* rec = tagged.AppendZero();
    uint64_t key;
    std::memcpy(&key, src, 8);
    const uint32_t bin = PartitionBinOfHash(SipHash24(partition_key, key), num_bins);
    std::memcpy(rec, &bin, 4);
    std::memcpy(rec + kReshardKeyOffset, src, 8 + value_size);
  }
  // Out-of-line, type-erased sort entry: this function is audited end-to-end by the
  // binary dataflow verifier (ctdf_reshard_tag_sort), and the blocked executor's
  // inlined tile state is beyond the analyzer's tracking through a composite root —
  // ObliviousSortSlabErased is the boundary symbol (tools/ct_binary_manifest.json);
  // its kernels are audited decomposed. The comparator trampoline is captureless,
  // so the context pointer is null (never a pointer into this frame).
  ObliviousSortSlabErased(
      tagged, /*bin_offset=*/0, num_bins, /*bins_simulatable=*/1, lambda,
      [](const void*, const uint8_t* a, const uint8_t* b) {
        return LoadSecretU64(a, kReshardKeyOffset) < LoadSecretU64(b, kReshardKeyOffset);
      },
      /*less_ctx=*/nullptr, sort_strategy, sort_threads);
  // SNOOPY_OBLIVIOUS_END(reshard_partition)

  return tagged;
}

std::vector<ByteSlab> PartitionSlabByBin(const ByteSlab& records, const SipKey& partition_key,
                                         uint32_t num_bins, size_t value_size,
                                         int sort_threads, SortStrategy sort_strategy,
                                         uint32_t lambda) {
  if (num_bins == 0) {
    throw std::invalid_argument("PartitionSlabByBin needs at least one bin");
  }
  if (records.record_bytes() != 8 + value_size) {
    throw std::invalid_argument("PartitionSlabByBin: records must be key(8) | value");
  }

  const ByteSlab tagged = TagAndSortByBin(records, partition_key, num_bins, value_size,
                                          sort_threads, sort_strategy, lambda);

  // Public boundary split: partition sizes are public (each subORAM receives its
  // partition in the clear inside its enclave), so a plain scan over the sorted tags
  // declassifies nothing beyond them.
  std::vector<ByteSlab> parts;
  parts.reserve(num_bins);
  size_t cursor = 0;
  for (uint32_t bin = 0; bin < num_bins; ++bin) {
    ByteSlab part(0, 8 + value_size);
    while (cursor < tagged.size()) {
      uint32_t tag;
      std::memcpy(&tag, tagged.Record(cursor), 4);
      if (tag != bin) {
        break;
      }
      std::memcpy(part.AppendZero(), tagged.Record(cursor) + kReshardKeyOffset,
                  8 + value_size);
      ++cursor;
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace snoopy
