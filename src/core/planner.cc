#include "src/core/planner.h"

#include <cmath>

#include "src/analysis/batch_bound.h"

namespace snoopy {

namespace {

// Epoch-feasibility predicate: with epoch length t, can the pipeline keep up?
// Equation (1): both pipeline stages must finish one epoch's work within t.
bool EpochFeasible(const PlannerInput& input, const PlannerCostFns& fns, uint32_t l,
                   uint32_t s, double t) {
  const double requests_per_lb = input.min_throughput * t / static_cast<double>(l);
  const auto r = static_cast<uint64_t>(std::ceil(requests_per_lb));
  const uint64_t batch = BatchSize(r, s, input.lambda);
  const uint64_t per_suboram = input.num_objects / s + (input.num_objects % s != 0);
  const double lb_stage = fns.lb_seconds(r, s);
  const double so_stage = static_cast<double>(l) * fns.suboram_seconds(batch, per_suboram);
  return lb_stage <= t && so_stage <= t;
}

}  // namespace

double MinFeasibleEpoch(const PlannerInput& input, const PlannerCostFns& fns,
                        uint32_t load_balancers, uint32_t suborams, double t_max) {
  if (!EpochFeasible(input, fns, load_balancers, suborams, t_max)) {
    return -1.0;
  }
  // Feasibility is monotone in t for fixed configuration: increasing t grows the work
  // per epoch only linearly while batching efficiency improves, so if t works then
  // larger t works. Binary search the smallest feasible t.
  double lo = 1e-4;
  double hi = t_max;
  if (EpochFeasible(input, fns, load_balancers, suborams, lo)) {
    return lo;
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EpochFeasible(input, fns, load_balancers, suborams, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

PlannerResult PlanConfiguration(const PlannerInput& input, const PlannerCostFns& fns) {
  PlannerResult best;
  const double t_max = 2.0 * input.max_latency_s / 5.0;  // Equation (2)
  for (uint32_t l = 1; l <= input.max_load_balancers; ++l) {
    for (uint32_t s = 1; s <= input.max_suborams; ++s) {
      const double cost = l * input.lb_cost_per_month + s * input.suboram_cost_per_month;
      if (best.feasible && cost >= best.cost_per_month) {
        continue;  // cannot improve
      }
      const double t = MinFeasibleEpoch(input, fns, l, s, t_max);
      if (t < 0) {
        continue;
      }
      best.feasible = true;
      best.load_balancers = l;
      best.suborams = s;
      best.epoch_seconds = t;
      best.avg_latency_s = 2.5 * t;
      best.cost_per_month = cost;
    }
  }
  return best;
}

std::vector<ElasticPlanStep> PlanElasticSchedule(
    const PlannerInput& input, const PlannerCostFns& fns,
    const std::vector<LoadForecastPoint>& forecast) {
  std::vector<ElasticPlanStep> steps;
  for (const LoadForecastPoint& point : forecast) {
    PlannerInput phase = input;
    phase.min_throughput = point.ops_per_second;
    const PlannerResult plan = PlanConfiguration(phase, fns);
    if (!steps.empty()) {
      const ElasticPlanStep& prev = steps.back();
      if (prev.plan.feasible == plan.feasible &&
          prev.plan.load_balancers == plan.load_balancers &&
          prev.plan.suborams == plan.suborams) {
        // Same machine counts: extend the previous step rather than emitting a
        // no-op reshard. Record the step's peak load so it stays honest about what
        // it must sustain.
        if (point.ops_per_second > steps.back().offered_load) {
          steps.back().offered_load = point.ops_per_second;
          steps.back().plan = plan;
        }
        continue;
      }
    }
    ElasticPlanStep step;
    step.start_s = point.start_s;
    step.offered_load = point.ops_per_second;
    step.plan = plan;
    steps.push_back(step);
  }
  return steps;
}

}  // namespace snoopy
