#include "src/core/snoopy.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/core/reshard.h"
#include "src/crypto/sha256.h"
#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/parallel.h"
#include "src/obl/primitives.h"

namespace snoopy {

namespace {

// splitmix64 finalizer; mixes (base seed, epoch) into per-epoch preparation seeds.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string SubOramEndpointName(uint32_t so, uint32_t lb) {
  return "suboram/" + std::to_string(so) + "/from/" + std::to_string(lb);
}

std::string StripeEndpointName(uint32_t so) {
  return "suboram/" + std::to_string(so) + "/stripe";
}

// --- Stripe wire format -------------------------------------------------------------
// Host-level plaintext messages between subORAM hosts; the payloads are already
// AEAD-sealed counter-bound snapshots (or chunks of them), so confidentiality and
// rollback protection come from the sealing layer. A SHA-256 digest over the
// addressing fields and the payload catches in-flight corruption: a mismatch surfaces
// as IntegrityError inside the retry loop, like any transient fault.
constexpr uint8_t kStripeStore = 0;
constexpr uint8_t kStripeManifest = 1;
constexpr uint8_t kStripeFetch = 2;
// op(1) owner(4) seal_counter(8) chunk_index(4) chunk_count(4) blob_len(8) offset(8)
// len(8) digest(32).
constexpr size_t kStripeHeaderBytes = 77;
constexpr size_t kStripeManifestRespBytes = 33;

struct StripeMsg {
  uint8_t op = 0;
  uint32_t owner = 0;
  uint64_t seal_counter = 0;
  uint32_t chunk_index = 0;
  uint32_t chunk_count = 0;
  uint64_t blob_len = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
  Sha256::Digest digest{};
  std::vector<uint8_t> payload;
};

std::vector<uint8_t> EncodeStripeMsg(const StripeMsg& m) {
  std::vector<uint8_t> out(kStripeHeaderBytes + m.payload.size());
  uint8_t* p = out.data();
  *p = m.op;
  std::memcpy(p + 1, &m.owner, 4);
  std::memcpy(p + 5, &m.seal_counter, 8);
  std::memcpy(p + 13, &m.chunk_index, 4);
  std::memcpy(p + 17, &m.chunk_count, 4);
  std::memcpy(p + 21, &m.blob_len, 8);
  std::memcpy(p + 29, &m.offset, 8);
  std::memcpy(p + 37, &m.len, 8);
  std::memcpy(p + 45, m.digest.data(), 32);
  if (!m.payload.empty()) {
    std::memcpy(p + kStripeHeaderBytes, m.payload.data(), m.payload.size());
  }
  return out;
}

StripeMsg DecodeStripeMsg(std::span<const uint8_t> bytes, const std::string& endpoint) {
  if (bytes.size() < kStripeHeaderBytes) {
    throw IntegrityError(endpoint);
  }
  StripeMsg m;
  const uint8_t* p = bytes.data();
  m.op = *p;
  std::memcpy(&m.owner, p + 1, 4);
  std::memcpy(&m.seal_counter, p + 5, 8);
  std::memcpy(&m.chunk_index, p + 13, 4);
  std::memcpy(&m.chunk_count, p + 17, 4);
  std::memcpy(&m.blob_len, p + 21, 8);
  std::memcpy(&m.offset, p + 29, 8);
  std::memcpy(&m.len, p + 37, 8);
  std::memcpy(m.digest.data(), p + 45, 32);
  m.payload.assign(bytes.begin() + kStripeHeaderBytes, bytes.end());
  return m;
}

Sha256::Digest StripeDigest(uint32_t owner, uint64_t seal_counter, uint32_t chunk_index,
                            uint64_t offset, std::span<const uint8_t> payload) {
  Sha256 h;
  uint8_t fields[24];
  std::memcpy(fields, &owner, 4);
  std::memcpy(fields + 4, &seal_counter, 8);
  std::memcpy(fields + 12, &chunk_index, 4);
  std::memcpy(fields + 16, &offset, 8);
  h.Update(fields, sizeof(fields));
  h.Update(payload);
  return h.Finalize();
}

std::vector<std::pair<uint64_t, std::vector<uint8_t>>> SlabToObjects(const ByteSlab& slab,
                                                                     size_t value_size) {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> out;
  out.reserve(slab.size());
  for (size_t i = 0; i < slab.size(); ++i) {
    uint64_t key;
    std::memcpy(&key, slab.Record(i), 8);
    out.emplace_back(key, std::vector<uint8_t>(slab.Record(i) + 8,
                                               slab.Record(i) + 8 + value_size));
  }
  return out;
}

// Observability context for one phase-pool run: phase name for labels/spans, the
// tracer and pre-resolved metric handles to export into (either may be null), and
// the clock (null = steady_clock; the fault-injection deployment passes the
// VirtualClock). Metrics arrive as resolved handles (Snoopy::PoolMetricsFor)
// rather than a registry so the per-epoch path never repeats name-keyed lookups.
struct PhasePoolContext {
  const char* phase;
  Tracer* tracer = nullptr;
  const PoolPhaseMetrics* metrics = nullptr;
  std::function<double()> now;
};

// Runs tasks 0..n-1 across up to `threads` workers (the calling thread included) and
// merges every task's trace events back into the caller's sink in task-index order.
// Each task index is a *public* id (load balancer or subORAM number), so the merge
// order is simulatable and the merged trace is byte-identical at any thread count:
// with threads <= 1 the tasks simply run inline in index order, which produces the
// same event sequence the buffered merge reproduces.
//
// Scheduling is work-stealing over striped queues: worker w owns the contiguous
// stripe [w*chunk, (w+1)*chunk) behind its own atomic cursor; a worker that drains
// its stripe claims indices from its victims' cursors in cyclic order. Scheduling
// never affects the result because each task touches only its own per-index state
// and per-endpoint fault streams; it does feed the always-on per-worker profile
// (tasks, steals, busy/idle nanoseconds, queue depth -> RecordWorkerPhase), which
// records only public schedule facts. When the tracer is enabled each task also
// gets a span, buffered in a per-task SpanRingBuffer and merged in task-id order
// after the join, so the span sequence is deterministic at any epoch_threads.
//
// Workers are borrowed from the process-wide WorkPool, never spawned: spawning a
// fresh std::thread set per phase (the old design) plus nested sort threads under
// each task is exactly the oversubscription that inflated suboram_execute busy time
// 3.2x at 4 threads on a saturated host. Each task runs under a thread budget of
// max(1, threads / n) -- a public function of the configured width and the task
// count -- so nested sort parallelism (AdaptiveSortThreads) sizes itself to the
// workers its phase actually left spare and submits the halves to the same pool.
//
// Besides wall-clock busy time the executor charges each task's CPU time
// (CLOCK_THREAD_CPUTIME_ID) to its worker. Wall busy inflates with timesharing when
// the host is oversubscribed; CPU busy does not, and the exported ratio is the
// work_inflation signal the scaling-regression gates check.
//
// A task that throws doesn't stop its siblings (mirroring independent machines in the
// real deployment); after the join, the lowest-index exception is rethrown so the
// surfaced error doesn't depend on scheduling.
template <typename Task>
void RunIndexedPhase(size_t n, int threads, const PhasePoolContext& ctx,
                     const Task& task) {
  if (n == 0) {
    return;
  }
  const size_t max_workers = threads < 1 ? 1 : static_cast<size_t>(threads);
  const size_t workers = n < max_workers ? n : max_workers;
  const auto now = [&ctx]() -> double {
    return ctx.now ? ctx.now() : SpanTimer::SteadyNowSeconds();
  };
  const bool tracing = ctx.tracer != nullptr && ctx.tracer->enabled();
  const double pool_start = now();
  std::vector<WorkerPhaseStats> stats(workers);

  if (workers <= 1) {
    WorkerPhaseStats& st = stats[0];
    st.start_s = pool_start;
    st.max_queue_depth = n;
    for (size_t i = 0; i < n; ++i) {
      const double task_start = now();
      const double task_cpu_start = ThreadCpuNowSeconds();
      {
        TraceSpan span(tracing ? ctx.tracer : nullptr, "task", ctx.phase, i, 0);
        task(i);
      }
      st.busy_ns += static_cast<uint64_t>((now() - task_start) * 1e9);
      st.cpu_busy_ns +=
          static_cast<uint64_t>((ThreadCpuNowSeconds() - task_cpu_start) * 1e9);
      ++st.tasks;
    }
    st.finish_s = now();
    RecordWorkerPhase(ctx.tracer, ctx.metrics, ctx.phase, 1, pool_start,
                      st.finish_s, stats);
    return;
  }

  // Public per-task thread grant: spare pool width divided evenly over the tasks.
  const int task_budget =
      max_workers / n > 1 ? static_cast<int>(max_workers / n) : 1;

  std::vector<std::vector<TraceEvent>> buffers(n);
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::unique_ptr<SpanRingBuffer>> rings;
  if (tracing) {
    // Per-task rings stay small at detail 1 (a task plus its step spans); the
    // full default capacity is only worth its zero-fill cost when tile-level
    // detail multiplies the span count.
    const size_t ring_capacity =
        ctx.tracer->detail() >= 2 ? SpanRingBuffer::kDefaultCapacity : 64;
    rings.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rings.push_back(std::make_unique<SpanRingBuffer>(ring_capacity));
    }
  }
  // Padded so cursor fetch_adds from stealers don't false-share with neighbours.
  struct alignas(64) StripeCursor {
    std::atomic<size_t> next{0};
  };
  const size_t chunk = (n + workers - 1) / workers;
  auto stripe_begin = [&](size_t w) { return std::min(n, w * chunk); };
  auto stripe_end = [&](size_t w) { return std::min(n, (w + 1) * chunk); };
  std::vector<StripeCursor> cursors(workers);
  for (size_t w = 0; w < workers; ++w) {
    cursors[w].next.store(stripe_begin(w), std::memory_order_relaxed);
  }

  auto work = [&](size_t w) {
    WorkerPhaseStats& st = stats[w];
    st.start_s = now();
    st.max_queue_depth = stripe_end(w) - stripe_begin(w);
    auto run_one = [&](size_t i, bool stolen, size_t victim) {
      TraceThreadBuffer buffer{&buffers[i]};
      const double task_start = now();
      const double task_cpu_start = ThreadCpuNowSeconds();
      {
        TracerThreadBuffer spans{tracing ? rings[i].get() : nullptr};
        TraceSpan span(tracing ? ctx.tracer : nullptr, "task", ctx.phase, i, 1 + w);
        span.SetArg("worker", w);
        if (stolen) {
          span.SetArg("stolen_from", victim);
        }
        ScopedThreadBudget budget(task_budget);
        try {
          task(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      st.busy_ns += static_cast<uint64_t>((now() - task_start) * 1e9);
      st.cpu_busy_ns +=
          static_cast<uint64_t>((ThreadCpuNowSeconds() - task_cpu_start) * 1e9);
      ++st.tasks;
      if (stolen) {
        ++st.steals;
      }
    };
    for (;;) {
      const size_t i = cursors[w].next.fetch_add(1, std::memory_order_relaxed);
      if (i >= stripe_end(w)) {
        break;
      }
      run_one(i, false, w);
    }
    for (size_t delta = 1; delta < workers; ++delta) {
      const size_t victim = (w + delta) % workers;
      for (;;) {
        const size_t i = cursors[victim].next.fetch_add(1, std::memory_order_relaxed);
        if (i >= stripe_end(victim)) {
          break;
        }
        run_one(i, true, victim);
      }
    }
    st.finish_s = now();
  };

  // Borrow workers from the process-wide pool (persistent, parked between phases)
  // instead of spawning a thread set per phase.
  WorkPool::Instance().Run(workers, work);
  const double pool_end = now();
  for (size_t w = 0; w < workers; ++w) {
    const double idle_s = pool_end - stats[w].finish_s;
    stats[w].idle_ns = idle_s > 0 ? static_cast<uint64_t>(idle_s * 1e9) : 0;
  }
  for (const std::vector<TraceEvent>& buffer : buffers) {
    TraceAppendCurrent(buffer);
  }
  if (tracing) {
    for (const std::unique_ptr<SpanRingBuffer>& ring : rings) {
      ctx.tracer->Append(*ring);
    }
  }
  RecordWorkerPhase(ctx.tracer, ctx.metrics, ctx.phase, workers, pool_start,
                    pool_end, stats);
  for (std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

// Phase boundary timestamps from the fused prepare/execute run. The two phases
// overlap in time, so they can't be measured with nested RAII timers; the caller
// observes the phase histograms from these instead.
struct FusedPhaseTimes {
  double start_s = 0;
  double prepare_end_s = 0;
  double execute_end_s = 0;
};

// Epoch phases 1-2 fused on the public epoch schedule: load-balancer prepares and
// subORAM executes share one pool run instead of meeting at a global barrier. A
// subORAM task starts as soon as *its first* load balancer's batch is ready and
// waits per load balancer from there (`ready(lb)`), so executes overlap the tail
// of preparation -- the per-subORAM barrier the global join wasted. An execute
// worker that would stall on an unfinished prepare *helps*: it claims an unstarted
// prepare task and runs it (charging the time to the prepare phase), parking on the
// condition variable only when every prepare is already claimed.
//
// Leakage: the schedule is a pure function of public values -- task counts, the
// configured width, and wall-clock completion order -- and every scheduled item is
// a public id, so the overlap leaks nothing the sequential schedule didn't.
// Trace events are buffered per task and merged in (prepares 0..L-1, executes
// 0..S-1) order, which is exactly the sequential two-phase order, so the merged
// enclave trace is byte-identical at any thread count.
//
// `prepare(lb)` must make prepared state visible before returning; `execute(so,
// ready)` must call ready(lb) before touching load balancer lb's state and abandon
// the task when it returns false (a prepare failed somewhere: the sequential
// schedule would never have started phase 2, so executes stop at the earliest
// sound point and the error is rethrown after the join, lowest task index first).
// The executor records the two phase spans itself (rather than the caller
// wrapping it in TraceSpans) for two reasons: their boundaries are the measured
// fused-run timestamps, and they must sit in the merged span stream exactly where
// the sequential schedule puts them -- prepare tasks, prepare phase, execute
// tasks, execute phase -- so the span skeleton stays thread-count invariant.
template <typename PrepareTask, typename ExecuteTask>
FusedPhaseTimes RunFusedPrepareExecute(size_t num_lbs, size_t num_sos, int threads,
                                       uint64_t epoch_id, Tracer* tracer,
                                       const PoolPhaseMetrics* prep_metrics,
                                       const PoolPhaseMetrics* exec_metrics,
                                       const std::function<double()>& now_fn,
                                       const PrepareTask& prepare,
                                       const ExecuteTask& execute) {
  const auto now = [&now_fn]() -> double {
    return now_fn ? now_fn() : SpanTimer::SteadyNowSeconds();
  };
  const size_t total = num_lbs + num_sos;
  const size_t max_workers = threads < 1 ? 1 : static_cast<size_t>(threads);
  const size_t workers = total < max_workers ? total : max_workers;
  const bool tracing = tracer != nullptr && tracer->enabled();
  // Public per-task thread grants, per phase (same formula as RunIndexedPhase).
  const int prep_budget =
      max_workers / num_lbs > 1 ? static_cast<int>(max_workers / num_lbs) : 1;
  const int exec_budget =
      max_workers / num_sos > 1 ? static_cast<int>(max_workers / num_sos) : 1;

  FusedPhaseTimes times;
  times.start_s = now();

  std::vector<std::vector<TraceEvent>> buffers(total);
  std::vector<std::exception_ptr> errors(total);
  std::vector<std::unique_ptr<SpanRingBuffer>> rings;
  if (tracing) {
    const size_t ring_capacity =
        tracer->detail() >= 2 ? SpanRingBuffer::kDefaultCapacity : 64;
    rings.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      rings.push_back(std::make_unique<SpanRingBuffer>(ring_capacity));
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> prepare_done(num_lbs, 0);
  double last_prepare_finish = times.start_s;
  std::atomic<size_t> prepare_next{0};
  std::atomic<size_t> execute_next{0};
  std::atomic<bool> prepare_failed{false};

  std::vector<WorkerPhaseStats> prep_stats(workers);
  std::vector<WorkerPhaseStats> exec_stats(workers);
  // One shared queue per phase (no stripes: counts are tiny and the help protocol
  // needs a single claim point); record its depth once.
  prep_stats[0].max_queue_depth = num_lbs;
  exec_stats[0].max_queue_depth = num_sos;

  auto run_prepare = [&](size_t i, size_t w, bool helped) {
    WorkerPhaseStats& st = prep_stats[w];
    TraceThreadBuffer buffer{&buffers[i]};
    const double task_start = now();
    const double task_cpu_start = ThreadCpuNowSeconds();
    {
      TracerThreadBuffer spans{tracing ? rings[i].get() : nullptr};
      TraceSpan span(tracing ? tracer : nullptr, "task", "lb_prepare", i, 1 + w);
      span.SetArg("worker", w);
      if (helped) {
        span.SetArg("helped", 1);
      }
      ScopedThreadBudget budget(prep_budget);
      try {
        prepare(i);
      } catch (...) {
        errors[i] = std::current_exception();
        prepare_failed.store(true, std::memory_order_release);
      }
    }
    st.busy_ns += static_cast<uint64_t>((now() - task_start) * 1e9);
    st.cpu_busy_ns +=
        static_cast<uint64_t>((ThreadCpuNowSeconds() - task_cpu_start) * 1e9);
    ++st.tasks;
    if (helped) {
      ++st.steals;
    }
    const double finish = now();
    {
      std::lock_guard<std::mutex> g(mu);
      prepare_done[i] = 1;
      if (finish > last_prepare_finish) {
        last_prepare_finish = finish;
      }
    }
    cv.notify_all();
  };

  auto run_execute = [&](size_t so, size_t w) {
    WorkerPhaseStats& st = exec_stats[w];
    // Help time is charged to the prepare phase by run_prepare; subtract it here
    // so the borrowed stretch isn't double-counted as execute work.
    double borrowed_wall = 0;
    double borrowed_cpu = 0;
    auto ready = [&](uint32_t lb) -> bool {
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu);
          if (prepare_done[lb] != 0) {
            break;
          }
        }
        if (prepare_next.load(std::memory_order_relaxed) < num_lbs) {
          const size_t p = prepare_next.fetch_add(1, std::memory_order_relaxed);
          if (p < num_lbs) {
            const double help_start = now();
            const double help_cpu_start = ThreadCpuNowSeconds();
            run_prepare(p, w, true);
            borrowed_wall += now() - help_start;
            borrowed_cpu += ThreadCpuNowSeconds() - help_cpu_start;
            continue;
          }
        }
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return prepare_done[lb] != 0; });
        break;
      }
      return !prepare_failed.load(std::memory_order_acquire);
    };
    const size_t task_index = num_lbs + so;
    TraceThreadBuffer buffer{&buffers[task_index]};
    const double task_start = now();
    const double task_cpu_start = ThreadCpuNowSeconds();
    {
      TracerThreadBuffer spans{tracing ? rings[task_index].get() : nullptr};
      TraceSpan span(tracing ? tracer : nullptr, "task", "suboram_execute", so,
                     1 + w);
      span.SetArg("worker", w);
      ScopedThreadBudget budget(exec_budget);
      try {
        execute(so, ready);
      } catch (...) {
        errors[task_index] = std::current_exception();
      }
    }
    const double wall_s = (now() - task_start) - borrowed_wall;
    const double cpu_s = (ThreadCpuNowSeconds() - task_cpu_start) - borrowed_cpu;
    st.busy_ns += wall_s > 0 ? static_cast<uint64_t>(wall_s * 1e9) : 0;
    st.cpu_busy_ns += cpu_s > 0 ? static_cast<uint64_t>(cpu_s * 1e9) : 0;
    ++st.tasks;
  };

  auto work = [&](size_t w) {
    const double start = now();
    prep_stats[w].start_s = start;
    exec_stats[w].start_s = start;
    for (;;) {
      if (prepare_next.load(std::memory_order_relaxed) >= num_lbs) {
        break;
      }
      const size_t i = prepare_next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_lbs) {
        break;
      }
      run_prepare(i, w, false);
    }
    prep_stats[w].finish_s = now();
    for (;;) {
      const size_t so = execute_next.fetch_add(1, std::memory_order_relaxed);
      if (so >= num_sos) {
        break;
      }
      run_execute(so, w);
    }
    exec_stats[w].finish_s = now();
  };

  WorkPool::Instance().Run(workers, work);
  const double pool_end = now();
  times.execute_end_s = pool_end;
  times.prepare_end_s = last_prepare_finish;
  // All barrier idle belongs to the execute phase: prepares have no barrier of
  // their own anymore (that is the point of the fusion).
  for (size_t w = 0; w < workers; ++w) {
    const double idle_s = pool_end - exec_stats[w].finish_s;
    exec_stats[w].idle_ns = idle_s > 0 ? static_cast<uint64_t>(idle_s * 1e9) : 0;
  }

  for (const std::vector<TraceEvent>& buffer : buffers) {
    TraceAppendCurrent(buffer);
  }
  if (tracing) {
    // Sequential span order: prepare task spans, the prepare phase span, execute
    // task spans, the execute phase span. The phase spans carry the measured
    // overlap boundaries (prepare ends at the last prepare finish, not the join).
    for (size_t i = 0; i < num_lbs; ++i) {
      tracer->Append(*rings[i]);
    }
    SpanEvent prep_phase;
    prep_phase.cat = "phase";
    prep_phase.name = "lb_prepare";
    prep_phase.task_id = epoch_id;
    prep_phase.start_s = times.start_s;
    prep_phase.end_s = times.prepare_end_s;
    tracer->Record(prep_phase);
    for (size_t i = num_lbs; i < total; ++i) {
      tracer->Append(*rings[i]);
    }
    SpanEvent exec_phase;
    exec_phase.cat = "phase";
    exec_phase.name = "suboram_execute";
    exec_phase.task_id = epoch_id;
    exec_phase.start_s = times.start_s;
    exec_phase.end_s = times.execute_end_s;
    tracer->Record(exec_phase);
  }
  RecordWorkerPhase(tracer, prep_metrics, "lb_prepare", workers, times.start_s,
                    times.prepare_end_s, prep_stats);
  RecordWorkerPhase(tracer, exec_metrics, "suboram_execute", workers, times.start_s,
                    times.execute_end_s, exec_stats);
  for (std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return times;
}

// Default factory: the paper's throughput-optimized subORAM.
class DefaultSubOramFactory final : public SubOramBackendFactory {
 public:
  explicit DefaultSubOramFactory(const SnoopyConfig& config) : config_(config) {}
  std::unique_ptr<SubOramBackend> Create(uint32_t id, uint64_t seed) const override {
    SubOramConfig soc;
    soc.id = id;
    soc.value_size = config_.value_size;
    soc.lambda = config_.lambda;
    soc.sort_threads = config_.sort_threads;
    soc.sort_strategy = config_.sort_strategy;
    soc.check_distinct = config_.check_distinct;
    return std::make_unique<SubOram>(soc, seed);
  }

 private:
  SnoopyConfig config_;
};

}  // namespace

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed)
    : owned_factory_(std::make_unique<DefaultSubOramFactory>(config)),
      factory_(owned_factory_.get()),
      config_(config),
      rng_(seed) {
  Construct();
}

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed,
               const SubOramBackendFactory& factory)
    : factory_(&factory), config_(config), rng_(seed) {
  Construct();
}

void Snoopy::Construct() {
  if (config_.num_load_balancers == 0 || config_.num_suborams == 0) {
    throw std::invalid_argument("Snoopy needs at least one load balancer and one subORAM");
  }
  if (config_.striping.replicas > 0) {
    const uint32_t peers =
        config_.striping.replicas + (config_.striping.xor_parity ? 1 : 0);
    if (config_.num_suborams <= peers) {
      throw std::invalid_argument(
          "striping needs num_suborams > replicas (+1 in parity mode): the stripes "
          "live on peer subORAMs");
    }
    if (config_.striping.repair_epochs == 0) {
      throw std::invalid_argument("striping.repair_epochs must be positive");
    }
  }
  partition_key_ = rng_.NextSipKey();

  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    lb_enclaves_.push_back(std::make_unique<Enclave>("snoopy-load-balancer", lb));
    LoadBalancerConfig lbc;
    lbc.id = lb;
    lbc.num_suborams = config_.num_suborams;
    lbc.value_size = config_.value_size;
    lbc.lambda = config_.lambda;
    lbc.sort_threads = config_.sort_threads;
    lbc.sort_strategy = config_.sort_strategy;
    const uint64_t lb_seed = rng_.Next64();
    lb_base_seeds_.push_back(lb_seed);
    lbs_.push_back(std::make_unique<LoadBalancer>(lbc, partition_key_, lb_seed));
    pending_.emplace_back(config_.value_size);
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    so_enclaves_.push_back(std::make_unique<Enclave>("snoopy-suboram", so));
    suborams_.push_back(factory_->Create(so, rng_.Next64()));
  }

  // Attested channel establishment between every load balancer and subORAM pair
  // (paper section 3.1), then endpoint registration on the message network.
  links_.resize(config_.num_load_balancers);
  link_generation_.resize(config_.num_load_balancers);
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    link_generation_[lb].assign(config_.num_suborams, 0);
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(so_enclaves_[so]->quote());
      const Aead::Key check = so_enclaves_[so]->EstablishChannel(lb_enclaves_[lb]->quote());
      if (key != check) {
        throw std::runtime_error("channel key mismatch after attestation");
      }
      const uint32_t link_id = lb * config_.num_suborams + so;
      links_[lb].push_back(std::make_unique<SecureLink>(key, link_id));
    }
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    RegisterSubOramEndpoints(so);
  }

  // Rollback-protected persistence (paper section 9): a sealing key for the subORAM
  // snapshots plus one trusted monotonic counter per subORAM. Drawn after all other
  // construction-time randomness so existing seeded deployments are unchanged.
  sealed_store_ = std::make_unique<SealedStore>(rng_.NextKey32(), &counters_);
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    so_counter_ids_.push_back(counters_.Create());
  }
  so_snapshots_.resize(config_.num_suborams);
  so_response_cache_.resize(config_.num_suborams);
  so_executed_lbs_.resize(config_.num_suborams);
  so_health_.assign(config_.num_suborams, PartitionHealth::kHealthy);
  so_repair_.resize(config_.num_suborams);
  stripe_store_.resize(config_.num_suborams);
  network_.set_clock(&clock_);
}

void Snoopy::RegisterSubOramEndpoints(uint32_t so) {
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    network_.Register(SubOramEndpointName(so, lb),
                      [this, lb, so](std::span<const uint8_t> payload) {
                        return SubOramEndpointHandler(lb, so, payload);
                      });
  }
  network_.Register(StripeEndpointName(so), [this, so](std::span<const uint8_t> payload) {
    return StripeEndpointHandler(so, payload);
  });
}

void Snoopy::set_fault_injector(FaultInjector* injector) {
  fault_injector_ = injector;
  network_.set_fault_injector(injector);
}

double Snoopy::NowSeconds() const {
  // Under fault injection the epoch pipeline advances the VirtualClock (retry
  // backoffs, injected delays); spans read the same clock so chaos runs are
  // deterministic. Outside fault injection, wall time.
  return fault_injector_ != nullptr ? clock_.now_s() : SpanTimer::SteadyNowSeconds();
}

// Phase names whose duration histograms are pre-resolved in EpochMetrics(): the
// per-epoch pipeline phases plus the epoch-boundary seal and repair spans.
constexpr const char* kCachedPhaseNames[] = {"lb_prepare", "suboram_execute",
                                             "response_match", "seal", "repair"};
constexpr size_t kNumCachedPhases =
    sizeof(kCachedPhaseNames) / sizeof(kCachedPhaseNames[0]);

Histogram* Snoopy::PhaseHistogram(const char* phase) const {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  const EpochMetricsCache* cache = EpochMetrics();
  for (size_t i = 0; i < kNumCachedPhases; ++i) {
    if (std::strcmp(phase, kCachedPhaseNames[i]) == 0) {
      return cache->phase_seconds[i];
    }
  }
  return &metrics_->GetHistogram("snoopy_epoch_phase_seconds", {{"phase", phase}});
}

const Snoopy::EpochMetricsCache* Snoopy::EpochMetrics() const {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  if (epoch_metrics_registry_ != metrics_) {
    EpochMetricsCache cache;
    cache.epoch_seconds = &metrics_->GetHistogram("snoopy_epoch_seconds");
    cache.epochs_total = &metrics_->GetCounter("snoopy_epochs_total");
    cache.requests_total = &metrics_->GetCounter("snoopy_requests_total");
    cache.degraded_epochs_total =
        &metrics_->GetCounter("snoopy_degraded_epochs_total");
    cache.deferred_requests_total =
        &metrics_->GetCounter("snoopy_deferred_requests_total");
    for (size_t i = 0; i < kNumCachedPhases; ++i) {
      cache.phase_seconds.push_back(&metrics_->GetHistogram(
          "snoopy_epoch_phase_seconds", {{"phase", kCachedPhaseNames[i]}}));
    }
    for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
      cache.batch_size.push_back(&metrics_->GetHistogram(
          "snoopy_batch_size", {{"lb", std::to_string(lb)}}));
    }
    epoch_metrics_ = std::move(cache);
    epoch_metrics_registry_ = metrics_;
  }
  return &epoch_metrics_;
}

const PoolPhaseMetrics* Snoopy::PoolMetricsFor(const char* phase) const {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  static constexpr const char* kPhases[3] = {"lb_prepare", "suboram_execute",
                                             "response_match"};
  if (pool_metrics_registry_ != metrics_) {
    for (size_t i = 0; i < 3; ++i) {
      pool_phase_metrics_[i] = PoolPhaseMetrics::Resolve(metrics_, kPhases[i]);
    }
    pool_metrics_registry_ = metrics_;
  }
  for (size_t i = 0; i < 3; ++i) {
    if (std::strcmp(phase, kPhases[i]) == 0) {
      return &pool_phase_metrics_[i];
    }
  }
  return nullptr;
}

uint64_t Snoopy::EpochSeed(uint32_t lb, uint64_t epoch) const {
  return Mix64(lb_base_seeds_[lb] ^ Mix64(epoch));
}

void Snoopy::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& obj : objects) {
    if (obj.first >= kDummyKeyBase) {
      throw std::invalid_argument("object keys must be below 2^63");
    }
  }
  if (config_.oblivious_init) {
    InitializeOblivious(objects);
  } else {
    std::vector<std::vector<std::pair<uint64_t, std::vector<uint8_t>>>> parts(
        config_.num_suborams);
    for (const auto& obj : objects) {
      parts[lbs_[0]->SubOramOf(obj.first)].push_back(obj);
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      suborams_[so]->Initialize(parts[so]);
    }
  }
  // First rollback-protected snapshot: a subORAM that crashes before its first epoch
  // completes recovers to its freshly loaded partition. Stripes distribute only after
  // *every* partition sealed (same ordering rule as the epoch boundary).
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    SealSubOramState(so);
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    DistributeStripes(so);
  }
}

void Snoopy::SealSubOramState(uint32_t so) {
  if (suborams_[so]->SupportsSealing()) {
    so_snapshots_[so] = suborams_[so]->SealState(*sealed_store_, so_counter_ids_[so]);
  }
}

void Snoopy::InitializeOblivious(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  // Paper Figure 23 via the shared oblivious redistribution kernel (src/core/reshard.h),
  // the same machinery elastic resharding runs at epoch boundaries.
  const size_t value_size = config_.value_size;
  ByteSlab slab(0, 8 + value_size);
  for (const auto& [key, value] : objects) {
    uint8_t* rec = slab.AppendZero();
    std::memcpy(rec, &key, 8);
    const size_t n = value.size() < value_size ? value.size() : value_size;
    std::memcpy(rec + 8, value.data(), n);
  }
  const std::vector<ByteSlab> parts =
      PartitionSlabByBin(slab, partition_key_, config_.num_suborams, value_size,
                         config_.sort_threads, config_.sort_strategy, config_.lambda);
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    suborams_[so]->Initialize(SlabToObjects(parts[so], value_size));
  }
}

void Snoopy::SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key) {
  SubmitReadWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                   client_seq, key);
}

void Snoopy::SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value) {
  SubmitWriteWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                    client_seq, key, value);
}

void Snoopy::SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                              uint64_t key) {
  RequestHeader h;
  h.key = key;
  h.op = kOpRead;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, {});
}

void Snoopy::SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                               uint64_t key, std::span<const uint8_t> value) {
  RequestHeader h;
  h.key = key;
  h.op = kOpWrite;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, value);
}

void Snoopy::SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value) {
  const auto lb = static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers));
  pending_[lb].Append(header, value);
}

size_t Snoopy::pending_requests() const {
  size_t n = 0;
  for (const RequestBatch& b : pending_) {
    n += b.size();
  }
  return n;
}

// Batches travel as [epoch id (8 bytes, plaintext) | sealed batch]. The epoch id lets
// the subORAM's host side recognize a retransmission and re-serve the cached sealed
// response instead of re-executing -- retried and duplicated deliveries therefore
// change neither the store state (Appendix C linearizability) nor the enclave's
// memory trace (the batch is processed exactly once).
std::vector<uint8_t> Snoopy::SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                                    std::span<const uint8_t> payload) {
  const std::string endpoint = SubOramEndpointName(so, lb);
  if (payload.size() < 8) {
    throw IntegrityError(endpoint);
  }
  uint64_t batch_epoch = 0;
  std::memcpy(&batch_epoch, payload.data(), 8);
  if (batch_epoch != epoch_) {
    // A stale or bit-flipped epoch tag; either way the sender must retransmit.
    throw IntegrityError(endpoint);
  }
  auto& cache = so_response_cache_[so];
  if (const auto it = cache.find(lb); it != cache.end()) {
    // Retransmit: serve the cached epoch response. Safe to count -- a dedup hit is
    // caused by a network event (duplicate delivery or lost reply) the adversary
    // already observes.
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snoopy_dedup_hits_total").Increment();
    }
    return it->second;
  }
  std::vector<uint8_t> plain;
  if (!links_[lb][so]->a_to_b().Open(payload.subspan(8), plain)) {
    throw IntegrityError(endpoint);
  }
  RequestBatch batch = RequestBatch::Deserialize(plain);
  RequestBatch response = suborams_[so]->ProcessBatch(std::move(batch));
  so_executed_lbs_[so].insert(lb);
  std::vector<uint8_t> sealed_resp = links_[lb][so]->b_to_a().Seal(response.Serialize());
  cache[lb] = sealed_resp;
  return sealed_resp;
}

// One load-balancer-to-subORAM exchange under the retry policy. Seals lazily and only
// once per link generation: a resend must be byte-identical (the dedup cache and the
// channel counters both depend on it), but after a crash recovery rekeys the link, the
// old bytes are for a dead session and the batch must be resealed. A crash observed
// mid-call triggers RecoverSubOram with this call's lb as the replay limit.
std::vector<uint8_t> Snoopy::RetriedSubOramCall(
    uint32_t lb, uint32_t so, const std::vector<uint8_t>& serialized,
    const std::vector<LoadBalancer::PreparedEpoch>* prepared) {
  const std::string endpoint = SubOramEndpointName(so, lb);
  std::vector<uint8_t> envelope;
  uint64_t sealed_generation = ~uint64_t{0};
  auto call = [&]() -> std::vector<uint8_t> {
    if (sealed_generation != link_generation_[lb][so]) {
      const std::vector<uint8_t> sealed = links_[lb][so]->a_to_b().Seal(serialized);
      envelope.assign(8, 0);
      std::memcpy(envelope.data(), &epoch_, 8);
      envelope.insert(envelope.end(), sealed.begin(), sealed.end());
      sealed_generation = link_generation_[lb][so];
    }
    std::vector<uint8_t> sealed_resp =
        network_.Call("lb/" + std::to_string(lb), endpoint, envelope);
    std::vector<uint8_t> plain;
    if (!links_[lb][so]->b_to_a().Open(sealed_resp, plain)) {
      throw IntegrityError(endpoint);
    }
    return plain;
  };

  RetryExecutor executor(config_.retry, /*jitter_seed=*/EpochSeed(lb, epoch_) ^ so, &clock_);
  const std::string caller = "lb/" + std::to_string(lb);
  executor.set_on_retry([this, &caller, &endpoint] {
    network_.RecordRetry(caller, endpoint);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snoopy_retries_total", {{"endpoint", endpoint}}).Increment();
    }
  });
  return executor.Execute(
      call, [&](const EndpointCrashedError&) { RecoverSubOram(so, prepared, lb); });
}

RequestBatch Snoopy::CallSubOram(uint32_t lb, uint32_t so,
                                 const std::vector<LoadBalancer::PreparedEpoch>& prepared) {
  {
    // Typed failover instead of spinning retries against a dead machine: the epoch
    // loop catches this, synthesizes a placeholder batch and requeues the partition's
    // requests into the next epoch.
    std::lock_guard<std::mutex> g(health_mu_);
    if (so_health_[so] != PartitionHealth::kHealthy) {
      throw PartitionUnavailableError(SubOramEndpointName(so, lb), so,
                                      so_repair_[so].epochs_remaining);
    }
  }
  return RequestBatch::Deserialize(RetriedSubOramCall(
      lb, so, prepared[lb].suboram_batches[so].Serialize(), &prepared));
}

void Snoopy::RecoverSubOram(uint32_t so,
                            const std::vector<LoadBalancer::PreparedEpoch>* prepared,
                            uint32_t lb_limit) {
  const std::string component = "suboram/" + std::to_string(so);
  if (!suborams_[so]->SupportsSealing()) {
    throw std::runtime_error(component +
                             " crashed and its backend does not support sealed snapshots");
  }

  // Restore the freshest sealed snapshot. A stale or tampered blob means the host is
  // replaying superseded state; refusing to start is the only safe answer.
  const UnsealStatus status =
      suborams_[so]->RestoreState(*sealed_store_, so_counter_ids_[so], so_snapshots_[so]);
  if (status != UnsealStatus::kOk) {
    throw RollbackDetectedError(component, status);
  }

  // The restarted enclave has no channel state: every load balancer re-attests and
  // both ends start fresh sessions. Bumping the generation invalidates any sealed
  // bytes still held by in-flight callers. The rng_ lock serializes concurrent
  // subORAM recoveries (parallel phase 2); each recovery touches only its own
  // subORAM's links/cache, so the key draw is the lone shared mutation.
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    std::array<uint8_t, 32> key;
    {
      std::lock_guard<std::mutex> g(rng_mu_);
      key = rng_.NextKey32();
    }
    links_[lb][so]->Rekey(key);
    ++link_generation_[lb][so];
  }
  so_response_cache_[so].clear();
  if (fault_injector_ != nullptr) {
    fault_injector_->Restart(component);
  }
  network_.RecordRecovery();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_recoveries_total", {{"component", component}}).Increment();
  }

  // The snapshot predates this epoch's batches; replay the ones the subORAM had
  // already executed (in load-balancer order, the Appendix C linearization) so the
  // restored state catches up to the crash point. The caller's own batch (lb_limit)
  // is excluded -- its pending retry delivers it. Replays run through the normal
  // endpoint path: they repopulate the response cache, tolerate further transient
  // faults, and -- via RetriedSubOramCall's own crash handling -- recover recursively
  // if the component is crashed again mid-replay (safe because the executed set is
  // durable across recoveries and restore is idempotent from the same snapshot).
  // Responses are discarded: re-execution from the same pre-epoch state reproduces
  // the already-delivered answers.
  if (prepared == nullptr) {
    return;
  }
  for (const uint32_t lb : so_executed_lbs_[so]) {
    if (lb >= lb_limit) {
      continue;
    }
    RetriedSubOramCall(lb, so, (*prepared)[lb].suboram_batches[so].Serialize(), prepared);
  }
}

void Snoopy::RecoverLoadBalancer(uint32_t lb) {
  // Load balancers are stateless across epochs (section 4.3): rebuild is a fresh
  // enclave with the same static partition key and config. Its epoch preparation is
  // already deterministic via EpochSeed, so the replacement produces byte-identical
  // batches to the ones the crashed instance would have sent. Pending requests live
  // with the clients in this model; they resubmit into the rebuilt instance.
  lb_enclaves_[lb] = std::make_unique<Enclave>("snoopy-load-balancer", lb);
  const LoadBalancerConfig lbc = lbs_[lb]->config();
  lbs_[lb] = std::make_unique<LoadBalancer>(lbc, partition_key_, lb_base_seeds_[lb]);
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    std::array<uint8_t, 32> key;
    {
      std::lock_guard<std::mutex> g(rng_mu_);
      key = rng_.NextKey32();
    }
    links_[lb][so]->Rekey(key);
    ++link_generation_[lb][so];
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->Restart("lb/" + std::to_string(lb));
  }
  network_.RecordRecovery();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_recoveries_total", {{"component", "lb/" + std::to_string(lb)}})
        .Increment();
  }
}

// --- Striped redundancy, permanent loss, and background repair ----------------------

Snoopy::PartitionHealth Snoopy::HealthOf(uint32_t so) const {
  std::lock_guard<std::mutex> g(health_mu_);
  return so_health_[so];
}

Snoopy::PartitionHealth Snoopy::partition_health(uint32_t so) const { return HealthOf(so); }

uint32_t Snoopy::repair_epochs_remaining(uint32_t so) const {
  std::lock_guard<std::mutex> g(health_mu_);
  return so_repair_[so].epochs_remaining;
}

const Snoopy::HostStripe* Snoopy::host_stripe(uint32_t peer, uint32_t owner) const {
  const auto it = stripe_store_[peer].find(owner);
  return it == stripe_store_[peer].end() ? nullptr : &it->second;
}

void Snoopy::host_replace_stripe(uint32_t peer, uint32_t owner, HostStripe stripe) {
  stripe_store_[peer][owner] = std::move(stripe);
}

std::vector<uint32_t> Snoopy::StripePeers(uint32_t so) const {
  const uint32_t count =
      config_.striping.replicas + (config_.striping.xor_parity ? 1 : 0);
  std::vector<uint32_t> peers;
  peers.reserve(count);
  for (uint32_t i = 1; peers.size() < count; ++i) {
    peers.push_back((so + i) % config_.num_suborams);
  }
  return peers;
}

std::vector<uint8_t> Snoopy::RetriedStripeCall(uint32_t so, uint32_t peer,
                                               const std::vector<uint8_t>& request) {
  const std::string caller = "suboram/" + std::to_string(so);
  const std::string endpoint = StripeEndpointName(peer);
  const uint8_t op = request.empty() ? 0xff : request[0];
  auto call = [&]() -> std::vector<uint8_t> {
    std::vector<uint8_t> resp = network_.Call(caller, endpoint, request);
    if (op == kStripeFetch) {
      // Verify the fetched slice inside the retried call so a corrupted reply is
      // retried like any other transient fault.
      const StripeMsg req = DecodeStripeMsg(request, endpoint);
      if (resp.size() != 32 + req.len) {
        throw IntegrityError(endpoint);
      }
      const Sha256::Digest d =
          StripeDigest(req.owner, req.seal_counter, req.chunk_index, req.offset,
                       std::span<const uint8_t>(resp.data() + 32, req.len));
      if (!std::equal(d.begin(), d.end(), resp.begin())) {
        throw IntegrityError(endpoint);
      }
    }
    return resp;
  };
  RetryExecutor executor(config_.retry,
                         /*jitter_seed=*/Mix64(epoch_ ^ (uint64_t{so} << 32) ^ peer), &clock_);
  executor.set_on_retry([this, &caller, &endpoint] {
    network_.RecordRetry(caller, endpoint);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snoopy_retries_total", {{"endpoint", endpoint}}).Increment();
    }
  });
  // Stripe traffic only flows at epoch boundaries (post-seal), so a peer crash
  // observed here recovers from its already-sealed post-epoch snapshot with nothing
  // to replay.
  return executor.Execute(
      call, [&](const EndpointCrashedError&) { RecoverSubOram(peer, nullptr, 0); });
}

// Host-level stripe traffic at peer `so`. Runs inline on the caller's thread; all
// stripe traffic happens on the orchestrator thread at epoch boundaries, so the store
// needs no locking.
std::vector<uint8_t> Snoopy::StripeEndpointHandler(uint32_t so,
                                                   std::span<const uint8_t> payload) {
  const std::string endpoint = StripeEndpointName(so);
  StripeMsg m = DecodeStripeMsg(payload, endpoint);
  auto& store = stripe_store_[so];
  switch (m.op) {
    case kStripeStore: {
      if (m.digest != StripeDigest(m.owner, m.seal_counter, m.chunk_index, 0, m.payload)) {
        throw IntegrityError(endpoint);  // corrupted in flight; the owner retries
      }
      HostStripe s;
      s.seal_counter = m.seal_counter;
      s.chunk_index = m.chunk_index;
      s.chunk_count = m.chunk_count;
      s.blob_len = m.blob_len;
      s.payload = std::move(m.payload);
      store[m.owner] = std::move(s);  // latest seal wins; a re-store is idempotent
      return {1};
    }
    case kStripeManifest: {
      std::vector<uint8_t> out(kStripeManifestRespBytes, 0);
      const auto it = store.find(m.owner);
      if (it != store.end()) {
        const HostStripe& s = it->second;
        const uint64_t chunk_len = s.payload.size();
        out[0] = 1;
        std::memcpy(out.data() + 1, &s.seal_counter, 8);
        std::memcpy(out.data() + 9, &s.chunk_index, 4);
        std::memcpy(out.data() + 13, &s.chunk_count, 4);
        std::memcpy(out.data() + 17, &s.blob_len, 8);
        std::memcpy(out.data() + 25, &chunk_len, 8);
      }
      return out;
    }
    case kStripeFetch: {
      const auto it = store.find(m.owner);
      if (it == store.end() || it->second.seal_counter != m.seal_counter ||
          it->second.chunk_index != m.chunk_index ||
          m.offset + m.len > it->second.payload.size()) {
        // Addressing mismatch (stale manifest or corrupted request): retried, and the
        // repair coordinator replans from fresh manifests if it keeps failing.
        throw IntegrityError(endpoint);
      }
      const std::span<const uint8_t> slice(it->second.payload.data() + m.offset,
                                           static_cast<size_t>(m.len));
      const Sha256::Digest d =
          StripeDigest(m.owner, m.seal_counter, m.chunk_index, m.offset, slice);
      std::vector<uint8_t> out(32 + slice.size());
      std::memcpy(out.data(), d.data(), 32);
      if (!slice.empty()) {
        std::memcpy(out.data() + 32, slice.data(), slice.size());
      }
      return out;
    }
    default:
      throw IntegrityError(endpoint);
  }
}

void Snoopy::DistributeStripes(uint32_t so) {
  const StripingConfig& sc = config_.striping;
  if (sc.replicas == 0 || so_snapshots_[so].empty()) {
    return;
  }
  const std::vector<uint8_t>& blob = so_snapshots_[so];
  const uint64_t seal_counter = counters_.Read(so_counter_ids_[so]);
  const std::vector<uint32_t> peers = StripePeers(so);
  const uint32_t chunk_count = sc.xor_parity ? sc.replicas : 1;
  const uint64_t chunk_len =
      sc.xor_parity ? (blob.size() + chunk_count - 1) / chunk_count : blob.size();

  // Parity mode: zero-padded equal-size data chunks plus their XOR on the extra peer.
  std::vector<std::vector<uint8_t>> chunks;
  if (sc.xor_parity) {
    chunks.assign(peers.size(), std::vector<uint8_t>(chunk_len, 0));
    for (uint32_t c = 0; c < chunk_count; ++c) {
      const size_t off = static_cast<size_t>(c) * chunk_len;
      const size_t n = blob.size() > off
                           ? std::min<size_t>(chunk_len, blob.size() - off)
                           : 0;
      if (n > 0) {
        std::memcpy(chunks[c].data(), blob.data() + off, n);
      }
      for (size_t j = 0; j < chunk_len; ++j) {
        chunks[chunk_count][j] ^= chunks[c][j];
      }
    }
  }

  for (size_t i = 0; i < peers.size(); ++i) {
    const uint32_t peer = peers[i];
    if (HealthOf(peer) != PartitionHealth::kHealthy) {
      // A repairing peer has no machine to store on; redundancy for this snapshot
      // re-converges at the next boundary after its repair.
      if (metrics_ != nullptr) {
        metrics_->GetCounter("snoopy_stripe_skips_total").Increment();
      }
      continue;
    }
    StripeMsg m;
    m.op = kStripeStore;
    m.owner = so;
    m.seal_counter = seal_counter;
    m.chunk_index = sc.xor_parity ? static_cast<uint32_t>(i) : 0;
    m.chunk_count = chunk_count;
    m.blob_len = blob.size();
    m.payload = sc.xor_parity ? chunks[i] : blob;
    m.digest = StripeDigest(m.owner, m.seal_counter, m.chunk_index, 0, m.payload);
    try {
      RetriedStripeCall(so, peer, EncodeStripeMsg(m));
    } catch (const NetworkError&) {
      // Peer unreachable past the retry budget (or permanently lost mid-push): skip
      // its copy of this snapshot; the next boundary re-stripes.
      if (metrics_ != nullptr) {
        metrics_->GetCounter("snoopy_stripe_failures_total").Increment();
      }
    }
  }
}

void Snoopy::LoseSubOram(uint32_t so) { OnPartitionLost(so); }

void Snoopy::OnPartitionLost(uint32_t so) {
  const std::string component = "suboram/" + std::to_string(so);
  {
    std::lock_guard<std::mutex> g(health_mu_);
    if (so_health_[so] == PartitionHealth::kRepairing) {
      return;  // already detected
    }
    so_health_[so] = PartitionHealth::kRepairing;
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->MarkLost(component);
  }
  if (config_.striping.replicas == 0) {
    throw std::runtime_error(component +
                             " permanently lost with striping disabled: partition "
                             "state is unrecoverable");
  }
  // The machine took its state with it: the spare node under the dead identity starts
  // empty. The host-side per-epoch caches and the stripes this host held for *other*
  // owners died too; those owners re-converge redundancy at their next seal.
  suborams_[so]->Initialize({});
  so_snapshots_[so].clear();
  so_response_cache_[so].clear();
  so_executed_lbs_[so].clear();
  stripe_store_[so].clear();
  {
    std::lock_guard<std::mutex> g(health_mu_);
    so_repair_[so] = RepairState{};
    so_repair_[so].epochs_remaining = config_.striping.repair_epochs;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_partition_losses_total", {{"component", component}})
        .Increment();
  }
}

void Snoopy::PlanRepair(uint32_t so) {
  RepairState& rs = so_repair_[so];
  struct Manifest {
    uint32_t peer = 0;
    uint64_t seal_counter = 0;
    uint32_t chunk_index = 0;
    uint32_t chunk_count = 0;
    uint64_t blob_len = 0;
    uint64_t chunk_len = 0;
  };
  std::vector<Manifest> manifests;
  for (const uint32_t peer : StripePeers(so)) {
    if (HealthOf(peer) != PartitionHealth::kHealthy) {
      continue;
    }
    StripeMsg q;
    q.op = kStripeManifest;
    q.owner = so;
    std::vector<uint8_t> resp;
    try {
      resp = RetriedStripeCall(so, peer, EncodeStripeMsg(q));
    } catch (const NetworkError&) {
      continue;  // unreachable peer: plan around it
    }
    if (resp.size() != kStripeManifestRespBytes || resp[0] == 0) {
      continue;
    }
    Manifest man;
    man.peer = peer;
    std::memcpy(&man.seal_counter, resp.data() + 1, 8);
    std::memcpy(&man.chunk_index, resp.data() + 9, 4);
    std::memcpy(&man.chunk_count, resp.data() + 13, 4);
    std::memcpy(&man.blob_len, resp.data() + 17, 8);
    std::memcpy(&man.chunk_len, resp.data() + 25, 8);
    manifests.push_back(man);
  }

  // Choose the freshest seal for which a complete reconstruction set survives:
  // replication needs any one full copy; parity needs chunk_count of the
  // chunk_count + 1 chunks (the parity chunk substitutes for at most one missing data
  // chunk). Inconsistent geometry within a seal generation means host tampering;
  // such generations are skipped, and if nothing reconstructs the partition is gone.
  std::vector<uint64_t> counters_seen;
  for (const Manifest& m : manifests) {
    counters_seen.push_back(m.seal_counter);
  }
  std::sort(counters_seen.begin(), counters_seen.end(), std::greater<uint64_t>());
  counters_seen.erase(std::unique(counters_seen.begin(), counters_seen.end()),
                      counters_seen.end());
  for (const uint64_t counter : counters_seen) {
    std::vector<Manifest> gen;
    for (const Manifest& m : manifests) {
      if (m.seal_counter == counter) {
        gen.push_back(m);
      }
    }
    const uint32_t chunk_count = gen.front().chunk_count;
    const uint64_t blob_len = gen.front().blob_len;
    const uint64_t chunk_len = gen.front().chunk_len;
    bool consistent = chunk_count > 0 && chunk_len > 0;
    for (const Manifest& m : gen) {
      consistent = consistent && m.chunk_count == chunk_count && m.blob_len == blob_len &&
                   m.chunk_len == chunk_len && m.chunk_index <= chunk_count;
    }
    if (!consistent) {
      continue;
    }
    // Map data chunk index -> source (peer, stored chunk index). -1 entries are
    // missing; at most one may be covered by the parity chunk.
    std::vector<int> source_of(chunk_count, -1);
    int parity_at = -1;
    for (size_t i = 0; i < gen.size(); ++i) {
      if (gen[i].chunk_index == chunk_count) {
        parity_at = static_cast<int>(i);
      } else if (source_of[gen[i].chunk_index] < 0) {
        source_of[gen[i].chunk_index] = static_cast<int>(i);
      }
    }
    int missing = -1;
    bool viable = true;
    for (uint32_t c = 0; c < chunk_count; ++c) {
      if (source_of[c] >= 0) {
        continue;
      }
      if (missing >= 0 || parity_at < 0) {
        viable = false;  // two holes, or one hole and no parity
        break;
      }
      missing = static_cast<int>(c);
    }
    if (!viable) {
      continue;
    }
    rs.seal_counter = counter;
    rs.chunk_count = chunk_count;
    rs.blob_len = blob_len;
    rs.chunk_len = chunk_len;
    rs.parity_substituted = missing;
    rs.needed.clear();
    for (uint32_t c = 0; c < chunk_count; ++c) {
      const Manifest& src = gen[static_cast<size_t>(
          static_cast<int>(c) == missing ? parity_at : source_of[c])];
      rs.needed.emplace_back(src.peer, src.chunk_index);
    }
    rs.buffers.assign(rs.needed.size(), std::vector<uint8_t>(rs.chunk_len, 0));
    rs.cursor = 0;
    rs.planned = true;
    return;
  }
  throw std::runtime_error("suboram/" + std::to_string(so) +
                           " unrecoverable: no complete stripe set survives");
}

void Snoopy::RepairStep(uint32_t so) {
  RepairState& rs = so_repair_[so];
  if (!rs.planned) {
    PlanRepair(so);
  }
  // The per-epoch slice is a fixed public fraction of the (public) stripe geometry:
  // the repair rate is load-independent by construction, so the repair schedule leaks
  // nothing about the request pattern.
  const uint64_t total = rs.chunk_len * rs.needed.size();
  const uint64_t slice =
      (total + config_.striping.repair_epochs - 1) / config_.striping.repair_epochs;
  uint64_t fetched = 0;
  while (fetched < slice && rs.cursor < total) {
    const size_t idx = static_cast<size_t>(rs.cursor / rs.chunk_len);
    const uint64_t off = rs.cursor % rs.chunk_len;
    const uint64_t len = std::min<uint64_t>(slice - fetched, rs.chunk_len - off);
    StripeMsg q;
    q.op = kStripeFetch;
    q.owner = so;
    q.seal_counter = rs.seal_counter;
    q.chunk_index = rs.needed[idx].second;
    q.offset = off;
    q.len = len;
    std::vector<uint8_t> resp;
    try {
      resp = RetriedStripeCall(so, rs.needed[idx].first, EncodeStripeMsg(q));
    } catch (const NetworkError&) {
      // A source vanished mid-repair. Replan from the surviving peers and restart the
      // window (a public event driven by the public failure process); PlanRepair
      // throws when nothing reconstructs any more.
      {
        std::lock_guard<std::mutex> g(health_mu_);
        rs = RepairState{};
        rs.epochs_remaining = config_.striping.repair_epochs;
      }
      PlanRepair(so);
      return;
    }
    std::memcpy(rs.buffers[idx].data() + off, resp.data() + 32, static_cast<size_t>(len));
    rs.cursor += len;
    fetched += len;
  }
  {
    std::lock_guard<std::mutex> g(health_mu_);
    if (rs.epochs_remaining > 0) {
      --rs.epochs_remaining;
    }
  }
  if (rs.epochs_remaining == 0) {
    CompleteRepair(so);
  }
}

void Snoopy::CompleteRepair(uint32_t so) {
  RepairState& rs = so_repair_[so];
  const std::string component = "suboram/" + std::to_string(so);
  // Reassemble the sealed snapshot, XOR-reconstructing the parity-substituted data
  // chunk if one source was missing (parity ^ all other data chunks = missing chunk).
  if (rs.parity_substituted >= 0) {
    std::vector<uint8_t>& out = rs.buffers[static_cast<size_t>(rs.parity_substituted)];
    for (size_t i = 0; i < rs.buffers.size(); ++i) {
      if (static_cast<int>(i) == rs.parity_substituted) {
        continue;
      }
      for (size_t j = 0; j < out.size(); ++j) {
        out[j] ^= rs.buffers[i][j];
      }
    }
  }
  std::vector<uint8_t> blob;
  blob.reserve(static_cast<size_t>(rs.blob_len));
  for (const std::vector<uint8_t>& chunk : rs.buffers) {
    blob.insert(blob.end(), chunk.begin(), chunk.end());
  }
  blob.resize(static_cast<size_t>(rs.blob_len));  // strip chunk padding

  // Restore on the spare node under the dead identity. The counter check extends
  // rollback refusal to repair: a stale stripe set (host replaying a superseded seal
  // generation) is never served.
  const UnsealStatus status =
      suborams_[so]->RestoreState(*sealed_store_, so_counter_ids_[so], blob);
  if (status != UnsealStatus::kOk) {
    throw RollbackDetectedError(component, status);
  }
  so_snapshots_[so] = std::move(blob);  // freshest host snapshot for crash recovery

  // The spare enclave has no channel state: fresh sessions with every load balancer.
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    std::array<uint8_t, 32> key;
    {
      std::lock_guard<std::mutex> g(rng_mu_);
      key = rng_.NextKey32();
    }
    links_[lb][so]->Rekey(key);
    ++link_generation_[lb][so];
  }
  so_response_cache_[so].clear();
  so_executed_lbs_[so].clear();
  if (fault_injector_ != nullptr) {
    fault_injector_->Reincarnate(component);
  }
  network_.RecordRecovery();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_repairs_completed_total", {{"component", component}})
        .Increment();
  }
  {
    std::lock_guard<std::mutex> g(health_mu_);
    so_health_[so] = PartitionHealth::kHealthy;
    so_repair_[so] = RepairState{};
  }
}

RequestBatch Snoopy::PlaceholderBatch(uint64_t batch_size) const {
  RequestBatch batch(config_.value_size);
  for (uint64_t i = 0; i < batch_size; ++i) {
    RequestHeader h;
    // Reserved keys at the top of the dummy range: they match no original during
    // response propagation, so the unavailable partition's requests keep resp = 0
    // (the requeue flag) and these records compact away with the dummy responses.
    h.key = kDummyKeyBase | (uint64_t{0x7fffffff} << 31) | i;
    h.op = kOpRead;
    h.dummy = 1;
    h.resp = 1;
    h.granted = 1;
    batch.Append(h, {});
  }
  return batch;
}

void Snoopy::RegisterClient(uint64_t client_id, const AttestationQuote& client_quote) {
  if (clients_.count(client_id) != 0) {
    throw std::invalid_argument("client already registered");
  }
  ClientSession session;
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(client_quote);
    // Link ids for client channels live above the LB-subORAM range.
    const uint32_t link_id = 0x40000000u + static_cast<uint32_t>(client_id % 0x3fffffff) *
                                               config_.num_load_balancers +
                             lb;
    session.links.push_back(std::make_unique<SecureLink>(key, link_id));
    network_.Register(
        "lb/" + std::to_string(lb) + "/client/" + std::to_string(client_id),
        [this, client_id, lb](std::span<const uint8_t> sealed) -> std::vector<uint8_t> {
          std::vector<uint8_t> plain;
          if (!clients_.at(client_id).links[lb]->a_to_b().Open(sealed, plain)) {
            throw std::runtime_error("load balancer rejected client request");
          }
          RequestBatch one = RequestBatch::Deserialize(plain);
          for (size_t i = 0; i < one.size(); ++i) {
            pending_[lb].Append(one.Header(i),
                                std::span<const uint8_t>(one.Value(i), one.value_size()));
          }
          return {1};  // ack
        });
  }
  clients_.emplace(client_id, std::move(session));
}

SecureLink& Snoopy::client_link(uint64_t client_id, uint32_t lb) {
  return *clients_.at(client_id).links[lb];
}

std::vector<std::vector<uint8_t>> Snoopy::TakeMailbox(uint64_t client_id) {
  std::vector<std::vector<uint8_t>> out = std::move(clients_.at(client_id).mailbox);
  clients_.at(client_id).mailbox.clear();
  return out;
}

std::vector<ClientResponse> Snoopy::RunEpoch() {
  TraceRecord(TraceOp::kEpoch, epoch_, 0);
  std::vector<ClientResponse> all;

  // Root epoch span plus public epoch facts. Request counts per load balancer are
  // public in Snoopy's model: the network adversary observes which clients talk to
  // which balancer; what stays hidden is the *content* and the key distribution,
  // which never reaches telemetry (the batch size below is the padded f(R, S) of
  // Theorem 3, not the true demand per subORAM).
  const auto now_fn = [this] { return NowSeconds(); };
  SpanTimer epoch_span(
      metrics_ != nullptr ? EpochMetrics()->epoch_seconds : nullptr, now_fn);
  // Root tracer span for the whole epoch; closes on scope exit, after every phase
  // span, so tools/trace_report.py can attribute the epoch's wall-clock to phases
  // and orchestrator gaps. All arguments are public facts (request counts per
  // balancer are visible to the network adversary; the per-subORAM batch size is
  // the padded f(R, S) of Theorem 3).
  TraceSpan epoch_trace(tracer_, "epoch", "epoch", epoch_);
  epoch_trace.SetArg("pending", pending_requests());
  epoch_trace.SetArg("load_balancers", config_.num_load_balancers);
  epoch_trace.SetArg("suborams", config_.num_suborams);
  if (const EpochMetricsCache* cache = EpochMetrics()) {
    cache->epochs_total->Increment();
    cache->requests_total->Increment(pending_requests());
  }

  // Epoch-boundary failure polling: the failure process fires between epochs (crashes
  // mid-epoch are modelled by crash_before_reply faults on individual calls, permanent
  // mid-epoch losses by node_loss faults). A crashed load balancer is rebuilt
  // statelessly; a crashed subORAM is restored from its sealed snapshot (no replay
  // needed -- the snapshot is exactly the pre-epoch state); a permanently lost subORAM
  // enters the repair protocol below. The crash poll is skipped for a lost component:
  // there is no machine left to reboot.
  if (fault_injector_ != nullptr) {
    for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
      if (fault_injector_->PollEpochCrash("lb/" + std::to_string(lb))) {
        RecoverLoadBalancer(lb);
      }
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      const std::string component = "suboram/" + std::to_string(so);
      if (HealthOf(so) == PartitionHealth::kHealthy &&
          fault_injector_->PollEpochCrash(component)) {
        RecoverSubOram(so, nullptr, 0);
      }
      if (HealthOf(so) == PartitionHealth::kHealthy &&
          fault_injector_->PollNodeLoss(component)) {
        OnPartitionLost(so);
      }
    }
  }
  // Repair coordinator: one fixed-size reconstruction slice per repairing partition
  // per epoch; the final slice restores the partition, which then serves this epoch.
  {
    bool any_repairing = false;
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      any_repairing = any_repairing || HealthOf(so) == PartitionHealth::kRepairing;
    }
    TraceSpan repair_trace(any_repairing ? tracer_ : nullptr, "phase", "repair", epoch_);
    SpanTimer repair_span(any_repairing ? PhaseHistogram("repair") : nullptr, now_fn);
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      if (HealthOf(so) == PartitionHealth::kRepairing) {
        RepairStep(so);
      }
    }
  }
  if (const EpochMetricsCache* cache = EpochMetrics()) {
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      if (HealthOf(so) != PartitionHealth::kHealthy) {
        cache->degraded_epochs_total->Increment();
        break;
      }
    }
  }

  // Phase 1: every load balancer prepares its batches independently (section 4.3) --
  // one parallel task per load balancer. The per-(lb, epoch) seed fixes the epoch's
  // dummy-key randomness, so preparation is a pure function of (pending requests,
  // seed) and thread count changes nothing; a load balancer rebuilt after a crash
  // prepares byte-identical batches for the same reason.
  std::vector<LoadBalancer::PreparedEpoch> prepared(config_.num_load_balancers);
  auto prepare_one = [&](size_t lb) {
    RequestBatch requests = std::move(pending_[lb]);
    pending_[lb] = RequestBatch(config_.value_size);
    prepared[lb] = lbs_[lb]->PrepareBatches(std::move(requests),
                                            EpochSeed(static_cast<uint32_t>(lb), epoch_));
    if (metrics_ != nullptr) {
      // The padded per-subORAM batch size f(R, S): public by Theorem 3. The cache
      // was filled at the top of this epoch on the orchestrator thread; this task
      // may run on a pool worker, so it must only read resolved handles.
      EpochMetrics()->batch_size[lb]->Observe(
          static_cast<double>(prepared[lb].batch_size));
    }
  };

  // Phase 2: subORAMs execute the batches -- one task per subORAM, each applying its
  // batches in fixed load-balancer order, which is the linearization order of
  // Appendix C (the order is *per subORAM*, so distinct subORAMs may run
  // concurrently; this is the paper's Figure 9a scaling axis). The per-hop encryption
  // is real: each batch is sealed at the load balancer and opened inside the subORAM
  // endpoint. Every call runs under the retry policy and tolerates injected faults
  // and crashes; per-endpoint fault streams keep every (lb, so) exchange's fault
  // sequence independent of how the subORAM tasks interleave.
  //
  // `ready(lb)` gates each batch on its load balancer's preparation: a no-op on the
  // sequential path (phase 1 already joined), the per-LB overlap latch on the fused
  // path below.
  std::vector<std::vector<RequestBatch>> responses(config_.num_load_balancers);
  for (auto& per_lb : responses) {
    per_lb.resize(config_.num_suborams);
  }
  auto execute_one = [&](size_t so, const std::function<bool(uint32_t)>& ready) {
    try {
      for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
        if (!ready(lb)) {
          return;
        }
        responses[lb][so] = CallSubOram(lb, static_cast<uint32_t>(so), prepared);
      }
    } catch (const NodeLostError&) {
      // The machine vanished mid-epoch. Any responses it already produced this
      // epoch are discarded below: the state behind them died with the machine, so
      // delivering them would acknowledge writes the repaired partition will not
      // have. The whole partition's requests defer to the epoch queue instead.
      OnPartitionLost(static_cast<uint32_t>(so));
    } catch (const PartitionUnavailableError&) {
      // Already under repair when its turn came; placeholders below.
    }
  };

  if (config_.epoch_threads > 1) {
    // Fused prepare/execute on the public epoch schedule: subORAM tasks start on a
    // load balancer's batches as soon as that balancer finishes preparing, instead
    // of meeting the old global barrier between the phases. The fused run records
    // the two phase spans itself (overlapping in time, sequential in the merged
    // stream); the phase histograms take the boundary timestamps it measured.
    const FusedPhaseTimes fused = RunFusedPrepareExecute(
        config_.num_load_balancers, config_.num_suborams, config_.epoch_threads,
        epoch_, tracer_, PoolMetricsFor("lb_prepare"),
        PoolMetricsFor("suboram_execute"), now_fn, prepare_one, execute_one);
    if (Histogram* h = PhaseHistogram("lb_prepare")) {
      h->Observe(fused.prepare_end_s - fused.start_s);
    }
    if (Histogram* h = PhaseHistogram("suboram_execute")) {
      h->Observe(fused.execute_end_s - fused.start_s);
    }
  } else {
    {
      SpanTimer prepare_span(PhaseHistogram("lb_prepare"), now_fn);
      TraceSpan prepare_trace(tracer_, "phase", "lb_prepare", epoch_);
      RunIndexedPhase(config_.num_load_balancers, config_.epoch_threads,
                      {"lb_prepare", tracer_, PoolMetricsFor("lb_prepare"), now_fn},
                      prepare_one);
    }
    SpanTimer execute_span(PhaseHistogram("suboram_execute"), now_fn);
    TraceSpan execute_trace(tracer_, "phase", "suboram_execute", epoch_);
    RunIndexedPhase(config_.num_suborams, config_.epoch_threads,
                    {"suboram_execute", tracer_, PoolMetricsFor("suboram_execute"),
                     now_fn},
                    [&](size_t so) {
      execute_one(so, [](uint32_t) { return true; });
    });
  }
  // Degraded mode: placeholder batches stand in for unavailable partitions, so
  // response matching still sees one batch per (lb, subORAM). The placeholders
  // compact away and the partition's own requests surface unanswered (resp = 0),
  // which the delivery loop requeues into the next epoch.
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    if (HealthOf(so) == PartitionHealth::kHealthy) {
      continue;
    }
    for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
      responses[lb][so] = PlaceholderBatch(prepared[lb].batch_size);
    }
  }

  // Phase 3: match responses to clients. The oblivious matching (Figure 6) is one
  // task per load balancer; delivery stays on the orchestrator thread because sealing
  // into client mailboxes advances per-client channel counters in submission order.
  SpanTimer match_span(PhaseHistogram("response_match"), now_fn);
  std::vector<RequestBatch> matched_by_lb(config_.num_load_balancers);
  {
    TraceSpan match_trace(tracer_, "phase", "response_match", epoch_);
    RunIndexedPhase(config_.num_load_balancers, config_.epoch_threads,
                    {"response_match", tracer_, PoolMetricsFor("response_match"),
                     now_fn},
                    [&](size_t lb) {
      matched_by_lb[lb] =
          lbs_[lb]->MatchResponses(std::move(prepared[lb]), std::move(responses[lb]));
    });
  }
  // Delivery is deliberately serial (per-client channel counters advance in
  // submission order); its own span makes that serial fraction visible.
  TraceSpan deliver_trace(tracer_, "phase", "deliver", epoch_);
  uint64_t deferred = 0;
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    RequestBatch& matched = matched_by_lb[lb];
    for (size_t i = 0; i < matched.size(); ++i) {
      const RequestHeader& h = matched.Header(i);
      if (h.resp == 0) {
        // Unanswered: the target partition was unavailable this epoch. Defer back to
        // the epoch queue (bounded, once-per-epoch backoff) -- PrepareBatches
        // recomputes every scratch field, and the linearization point moves to the
        // epoch that finally answers, which is sound because no response was
        // delivered for this request yet.
        pending_[lb].Append(h,
                            std::span<const uint8_t>(matched.Value(i), config_.value_size));
        ++deferred;
        continue;
      }
      const auto session = clients_.find(h.client_id);
      if (session != clients_.end()) {
        // Sealed delivery for registered clients: [lb id | AEAD(response record)].
        RequestBatch one(config_.value_size);
        one.Append(h, std::span<const uint8_t>(matched.Value(i), config_.value_size));
        const std::vector<uint8_t> sealed =
            session->second.links[lb]->b_to_a().Seal(one.Serialize());
        std::vector<uint8_t> blob(4 + sealed.size());
        std::memcpy(blob.data(), &lb, 4);
        std::memcpy(blob.data() + 4, sealed.data(), sealed.size());
        session->second.mailbox.push_back(std::move(blob));
        continue;
      }
      ClientResponse resp;
      resp.client_id = h.client_id;
      resp.client_seq = h.client_seq;
      resp.key = h.key;
      resp.op = h.op;
      resp.value.assign(matched.Value(i), matched.Value(i) + config_.value_size);
      all.push_back(std::move(resp));
    }
  }

  deliver_trace.End();
  match_span.Stop();
  if (deferred > 0 && metrics_ != nullptr) {
    EpochMetrics()->deferred_requests_total->Increment(deferred);
  }

  // Epoch boundary: seal every healthy subORAM's post-epoch state FIRST (one
  // trusted-counter bump each, paper section 9), then retire the per-epoch dedup
  // state, then distribute redundancy stripes. The ordering matters: a stripe push
  // can trigger a peer's crash recovery, which must restore the *post*-epoch snapshot
  // with an empty executed set -- sealing or clearing after distribution could lose
  // the epoch's writes at that peer.
  {
    TraceSpan seal_trace(tracer_, "phase", "seal", epoch_);
    SpanTimer seal_span(PhaseHistogram("seal"), now_fn);
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      if (HealthOf(so) == PartitionHealth::kHealthy) {
        SealSubOramState(so);
      }
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      so_response_cache_[so].clear();
      so_executed_lbs_[so].clear();
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      if (HealthOf(so) == PartitionHealth::kHealthy) {
        DistributeStripes(so);
      }
    }
  }
  ++epoch_;
  epoch_span.Stop();
  if (metrics_ != nullptr) {
    network_.ExportTo(*metrics_);
  }
  return all;
}

// Epoch-boundary elastic resharding. Build-then-swap: everything for the new width is
// constructed off to the side (the exports are copies), so any failure up to the
// commit point -- including an injected participant crash, surfaced as
// ReshardAbortedError -- leaves the running deployment untouched. The commit itself
// only swaps vectors and re-registers endpoints.
void Snoopy::Reshard(uint32_t new_num_suborams) {
  const uint32_t old_s = config_.num_suborams;
  const uint32_t num_lbs = config_.num_load_balancers;
  if (new_num_suborams == 0) {
    throw std::invalid_argument("Reshard needs at least one subORAM");
  }
  if (config_.striping.replicas > 0) {
    const uint32_t peers =
        config_.striping.replicas + (config_.striping.xor_parity ? 1 : 0);
    if (new_num_suborams <= peers) {
      throw std::invalid_argument(
          "Reshard target too small for the striping configuration");
    }
  }
  for (uint32_t so = 0; so < old_s; ++so) {
    if (HealthOf(so) != PartitionHealth::kHealthy) {
      // A reshard moves every partition; a repairing one has nothing to export yet.
      throw PartitionUnavailableError(StripeEndpointName(so), so,
                                      repair_epochs_remaining(so));
    }
    if (!suborams_[so]->SupportsExport()) {
      throw std::runtime_error(
          "subORAM backend without partition export cannot reshard");
    }
  }
  if (new_num_suborams == old_s) {
    return;
  }

  // A participant found (or polled) crashed at the boundary aborts the attempt before
  // any state moves; the caller recovers it as usual and retries at a later boundary.
  const auto check_abort = [&] {
    if (fault_injector_ == nullptr) {
      return;
    }
    for (uint32_t so = 0; so < old_s; ++so) {
      const std::string c = "suboram/" + std::to_string(so);
      if (fault_injector_->IsCrashed(c) || fault_injector_->IsLost(c) ||
          fault_injector_->PollEpochCrash(c)) {
        throw ReshardAbortedError("reshard aborted: participant " + c +
                                  " failed at the boundary");
      }
    }
  };
  check_abort();

  // Gather every partition and obliviously redistribute the key space over the new
  // width (the Figure 23 bin-placement sort in src/core/reshard.h). Per-partition
  // sizes under the secret keyed hash are public, exactly as at initialization.
  ByteSlab all(0, 8 + config_.value_size);
  for (uint32_t so = 0; so < old_s; ++so) {
    const ByteSlab part = suborams_[so]->ExportSlab();
    if (part.record_bytes() != 8 + config_.value_size) {
      throw std::runtime_error("exported partition has an unexpected record layout");
    }
    for (size_t i = 0; i < part.size(); ++i) {
      std::memcpy(all.AppendZero(), part.Record(i), part.record_bytes());
    }
  }
  const std::vector<ByteSlab> parts =
      PartitionSlabByBin(all, partition_key_, new_num_suborams, config_.value_size,
                         config_.sort_threads, config_.sort_strategy, config_.lambda);
  check_abort();

  // Build the new deployment off to the side. Load balancer *enclaves* survive (their
  // client sessions must keep working); the balancer state machines are rebuilt for
  // the new width with their original base seeds, so EpochSeed determinism carries
  // over the reshard.
  std::vector<std::unique_ptr<Enclave>> new_so_enclaves;
  std::vector<std::unique_ptr<SubOramBackend>> new_suborams;
  for (uint32_t so = 0; so < new_num_suborams; ++so) {
    new_so_enclaves.push_back(std::make_unique<Enclave>("snoopy-suboram", so));
    new_suborams.push_back(factory_->Create(so, rng_.Next64()));
    new_suborams.back()->Initialize(SlabToObjects(parts[so], config_.value_size));
  }
  std::vector<std::unique_ptr<LoadBalancer>> new_lbs;
  for (uint32_t lb = 0; lb < num_lbs; ++lb) {
    LoadBalancerConfig lbc = lbs_[lb]->config();
    lbc.num_suborams = new_num_suborams;
    new_lbs.push_back(std::make_unique<LoadBalancer>(lbc, partition_key_, lb_base_seeds_[lb]));
  }
  std::vector<std::vector<std::unique_ptr<SecureLink>>> new_links(num_lbs);
  for (uint32_t lb = 0; lb < num_lbs; ++lb) {
    for (uint32_t so = 0; so < new_num_suborams; ++so) {
      const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(new_so_enclaves[so]->quote());
      const Aead::Key check = new_so_enclaves[so]->EstablishChannel(lb_enclaves_[lb]->quote());
      if (key != check) {
        throw std::runtime_error("channel key mismatch after attestation");
      }
      new_links[lb].push_back(
          std::make_unique<SecureLink>(key, lb * new_num_suborams + so));
    }
  }
  check_abort();

  // Commit.
  for (uint32_t so = 0; so < old_s; ++so) {
    for (uint32_t lb = 0; lb < num_lbs; ++lb) {
      network_.Unregister(SubOramEndpointName(so, lb));
    }
    network_.Unregister(StripeEndpointName(so));
  }
  so_enclaves_ = std::move(new_so_enclaves);
  suborams_ = std::move(new_suborams);
  lbs_ = std::move(new_lbs);
  links_ = std::move(new_links);
  config_.num_suborams = new_num_suborams;
  link_generation_.assign(num_lbs, std::vector<uint64_t>(new_num_suborams, 0));
  so_counter_ids_.clear();
  for (uint32_t so = 0; so < new_num_suborams; ++so) {
    so_counter_ids_.push_back(counters_.Create());
  }
  so_snapshots_.clear();
  so_snapshots_.resize(new_num_suborams);
  so_response_cache_.clear();
  so_response_cache_.resize(new_num_suborams);
  so_executed_lbs_.clear();
  so_executed_lbs_.resize(new_num_suborams);
  stripe_store_.clear();
  stripe_store_.resize(new_num_suborams);
  {
    std::lock_guard<std::mutex> g(health_mu_);
    so_health_.assign(new_num_suborams, PartitionHealth::kHealthy);
    so_repair_.clear();
    so_repair_.resize(new_num_suborams);
  }
  for (uint32_t so = 0; so < new_num_suborams; ++so) {
    RegisterSubOramEndpoints(so);
  }
  // Fresh rollback-protected snapshots + redundancy for the new partitions.
  for (uint32_t so = 0; so < new_num_suborams; ++so) {
    SealSubOramState(so);
  }
  for (uint32_t so = 0; so < new_num_suborams; ++so) {
    DistributeStripes(so);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_reshards_total").Increment();
  }
}

}  // namespace snoopy
