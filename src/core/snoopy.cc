#include "src/core/snoopy.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/primitives.h"

namespace snoopy {

namespace {

// Default factory: the paper's throughput-optimized subORAM.
class DefaultSubOramFactory final : public SubOramBackendFactory {
 public:
  explicit DefaultSubOramFactory(const SnoopyConfig& config) : config_(config) {}
  std::unique_ptr<SubOramBackend> Create(uint32_t id, uint64_t seed) const override {
    SubOramConfig soc;
    soc.id = id;
    soc.value_size = config_.value_size;
    soc.lambda = config_.lambda;
    soc.sort_threads = config_.sort_threads;
    soc.check_distinct = config_.check_distinct;
    return std::make_unique<SubOram>(soc, seed);
  }

 private:
  SnoopyConfig config_;
};

}  // namespace

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed)
    : Snoopy(config, seed, DefaultSubOramFactory(config)) {}

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed,
               const SubOramBackendFactory& factory)
    : config_(config), rng_(seed) {
  if (config_.num_load_balancers == 0 || config_.num_suborams == 0) {
    throw std::invalid_argument("Snoopy needs at least one load balancer and one subORAM");
  }
  partition_key_ = rng_.NextSipKey();

  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    lb_enclaves_.push_back(std::make_unique<Enclave>("snoopy-load-balancer", lb));
    LoadBalancerConfig lbc;
    lbc.id = lb;
    lbc.num_suborams = config_.num_suborams;
    lbc.value_size = config_.value_size;
    lbc.lambda = config_.lambda;
    lbc.sort_threads = config_.sort_threads;
    lbs_.push_back(std::make_unique<LoadBalancer>(lbc, partition_key_, rng_.Next64()));
    pending_.emplace_back(config_.value_size);
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    so_enclaves_.push_back(std::make_unique<Enclave>("snoopy-suboram", so));
    suborams_.push_back(factory.Create(so, rng_.Next64()));
  }

  // Attested channel establishment between every load balancer and subORAM pair
  // (paper section 3.1), then endpoint registration on the message network.
  links_.resize(config_.num_load_balancers);
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(so_enclaves_[so]->quote());
      const Aead::Key check = so_enclaves_[so]->EstablishChannel(lb_enclaves_[lb]->quote());
      if (key != check) {
        throw std::runtime_error("channel key mismatch after attestation");
      }
      const uint32_t link_id = lb * config_.num_suborams + so;
      links_[lb].push_back(std::make_unique<SecureLink>(key, link_id));
      network_.Register(
          "suboram/" + std::to_string(so) + "/from/" + std::to_string(lb),
          [this, lb, so](std::span<const uint8_t> sealed) {
            return SubOramEndpointHandler(lb, so, sealed);
          });
    }
  }
}

void Snoopy::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& obj : objects) {
    if (obj.first >= kDummyKeyBase) {
      throw std::invalid_argument("object keys must be below 2^63");
    }
  }
  if (config_.oblivious_init) {
    InitializeOblivious(objects);
    return;
  }
  std::vector<std::vector<std::pair<uint64_t, std::vector<uint8_t>>>> parts(
      config_.num_suborams);
  for (const auto& obj : objects) {
    parts[lbs_[0]->SubOramOf(obj.first)].push_back(obj);
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    suborams_[so]->Initialize(parts[so]);
  }
}

void Snoopy::InitializeOblivious(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  // Paper Figure 23: tag each object with its (secret) partition, obliviously sort by
  // the tag, then split at the (public) partition boundaries. Temporary record layout:
  // bin(4) | pad(4) | key(8) | value.
  const size_t value_size = config_.value_size;
  const size_t stride = 16 + value_size;
  ByteSlab slab(0, stride);
  for (const auto& [key, value] : objects) {
    uint8_t* rec = slab.AppendZero();
    const uint32_t bin = lbs_[0]->SubOramOf(key);
    std::memcpy(rec, &bin, 4);
    std::memcpy(rec + 8, &key, 8);
    const size_t n = value.size() < value_size ? value.size() : value_size;
    std::memcpy(rec + 16, value.data(), n);
  }
  BitonicSortSlab(
      slab,
      [](const uint8_t* a, const uint8_t* b) {
        uint32_t ba;
        uint32_t bb;
        std::memcpy(&ba, a, 4);
        std::memcpy(&bb, b, 4);
        return CtLt64(ba, bb);
      },
      config_.sort_threads);

  // Partition sizes are public (the subORAMs receive their partitions in the clear
  // inside the enclave), so a plain boundary scan is fine here.
  size_t cursor = 0;
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> part;
    while (cursor < slab.size()) {
      uint32_t bin;
      std::memcpy(&bin, slab.Record(cursor), 4);
      if (bin != so) {
        break;
      }
      uint64_t key;
      std::memcpy(&key, slab.Record(cursor) + 8, 8);
      part.emplace_back(key, std::vector<uint8_t>(slab.Record(cursor) + 16,
                                                  slab.Record(cursor) + 16 + value_size));
      ++cursor;
    }
    suborams_[so]->Initialize(part);
  }
}

void Snoopy::SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key) {
  SubmitReadWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                   client_seq, key);
}

void Snoopy::SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value) {
  SubmitWriteWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                    client_seq, key, value);
}

void Snoopy::SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                              uint64_t key) {
  RequestHeader h;
  h.key = key;
  h.op = kOpRead;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, {});
}

void Snoopy::SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                               uint64_t key, std::span<const uint8_t> value) {
  RequestHeader h;
  h.key = key;
  h.op = kOpWrite;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, value);
}

void Snoopy::SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value) {
  const auto lb = static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers));
  pending_[lb].Append(header, value);
}

size_t Snoopy::pending_requests() const {
  size_t n = 0;
  for (const RequestBatch& b : pending_) {
    n += b.size();
  }
  return n;
}

std::vector<uint8_t> Snoopy::SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                                    std::span<const uint8_t> sealed) {
  std::vector<uint8_t> plain;
  if (!links_[lb][so]->a_to_b().Open(sealed, plain)) {
    throw std::runtime_error("subORAM rejected batch: authentication/replay failure");
  }
  RequestBatch batch = RequestBatch::Deserialize(plain);
  RequestBatch response = suborams_[so]->ProcessBatch(std::move(batch));
  return links_[lb][so]->b_to_a().Seal(response.Serialize());
}

void Snoopy::RegisterClient(uint64_t client_id, const AttestationQuote& client_quote) {
  if (clients_.count(client_id) != 0) {
    throw std::invalid_argument("client already registered");
  }
  ClientSession session;
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(client_quote);
    // Link ids for client channels live above the LB-subORAM range.
    const uint32_t link_id = 0x40000000u + static_cast<uint32_t>(client_id % 0x3fffffff) *
                                               config_.num_load_balancers +
                             lb;
    session.links.push_back(std::make_unique<SecureLink>(key, link_id));
    network_.Register(
        "lb/" + std::to_string(lb) + "/client/" + std::to_string(client_id),
        [this, client_id, lb](std::span<const uint8_t> sealed) -> std::vector<uint8_t> {
          std::vector<uint8_t> plain;
          if (!clients_.at(client_id).links[lb]->a_to_b().Open(sealed, plain)) {
            throw std::runtime_error("load balancer rejected client request");
          }
          RequestBatch one = RequestBatch::Deserialize(plain);
          for (size_t i = 0; i < one.size(); ++i) {
            pending_[lb].Append(one.Header(i),
                                std::span<const uint8_t>(one.Value(i), one.value_size()));
          }
          return {1};  // ack
        });
  }
  clients_.emplace(client_id, std::move(session));
}

SecureLink& Snoopy::client_link(uint64_t client_id, uint32_t lb) {
  return *clients_.at(client_id).links[lb];
}

std::vector<std::vector<uint8_t>> Snoopy::TakeMailbox(uint64_t client_id) {
  std::vector<std::vector<uint8_t>> out = std::move(clients_.at(client_id).mailbox);
  clients_.at(client_id).mailbox.clear();
  return out;
}

std::vector<ClientResponse> Snoopy::RunEpoch() {
  TraceRecord(TraceOp::kEpoch, epoch_, 0);
  std::vector<ClientResponse> all;

  // Phase 1: every load balancer prepares its batches independently (section 4.3).
  std::vector<LoadBalancer::PreparedEpoch> prepared;
  prepared.reserve(config_.num_load_balancers);
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    RequestBatch requests = std::move(pending_[lb]);
    pending_[lb] = RequestBatch(config_.value_size);
    prepared.push_back(lbs_[lb]->PrepareBatches(std::move(requests)));
  }

  // Phase 2: subORAMs execute the batches in fixed load-balancer order -- the
  // linearization order of Appendix C. The per-hop encryption is real: each batch is
  // sealed at the load balancer and opened inside the subORAM endpoint.
  std::vector<std::vector<RequestBatch>> responses(config_.num_load_balancers);
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      const std::vector<uint8_t> sealed =
          links_[lb][so]->a_to_b().Seal(prepared[lb].suboram_batches[so].Serialize());
      const std::vector<uint8_t> sealed_resp = network_.Call(
          "lb/" + std::to_string(lb), "suboram/" + std::to_string(so) + "/from/" +
          std::to_string(lb),
          sealed);
      std::vector<uint8_t> plain;
      if (!links_[lb][so]->b_to_a().Open(sealed_resp, plain)) {
        throw std::runtime_error("load balancer rejected response: authentication failure");
      }
      responses[lb].push_back(RequestBatch::Deserialize(plain));
    }
  }

  // Phase 3: match responses to clients.
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    RequestBatch matched =
        lbs_[lb]->MatchResponses(std::move(prepared[lb]), std::move(responses[lb]));
    for (size_t i = 0; i < matched.size(); ++i) {
      const RequestHeader& h = matched.Header(i);
      const auto session = clients_.find(h.client_id);
      if (session != clients_.end()) {
        // Sealed delivery for registered clients: [lb id | AEAD(response record)].
        RequestBatch one(config_.value_size);
        one.Append(h, std::span<const uint8_t>(matched.Value(i), config_.value_size));
        const std::vector<uint8_t> sealed =
            session->second.links[lb]->b_to_a().Seal(one.Serialize());
        std::vector<uint8_t> blob(4 + sealed.size());
        std::memcpy(blob.data(), &lb, 4);
        std::memcpy(blob.data() + 4, sealed.data(), sealed.size());
        session->second.mailbox.push_back(std::move(blob));
        continue;
      }
      ClientResponse resp;
      resp.client_id = h.client_id;
      resp.client_seq = h.client_seq;
      resp.key = h.key;
      resp.op = h.op;
      resp.value.assign(matched.Value(i), matched.Value(i) + config_.value_size);
      all.push_back(std::move(resp));
    }
  }
  ++epoch_;
  return all;
}

}  // namespace snoopy
