#include "src/core/snoopy.h"

#include <atomic>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/primitives.h"

namespace snoopy {

namespace {

// splitmix64 finalizer; mixes (base seed, epoch) into per-epoch preparation seeds.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string SubOramEndpointName(uint32_t so, uint32_t lb) {
  return "suboram/" + std::to_string(so) + "/from/" + std::to_string(lb);
}

// Runs tasks 0..n-1 across up to `threads` workers (the calling thread included) and
// merges every task's trace events back into the caller's sink in task-index order.
// Each task index is a *public* id (load balancer or subORAM number), so the merge
// order is simulatable and the merged trace is byte-identical at any thread count:
// with threads <= 1 the tasks simply run inline in index order, which produces the
// same event sequence the buffered merge reproduces. Task assignment to workers is
// dynamic (work-stealing counter); that never affects the result because each task
// touches only its own per-index state and per-endpoint fault streams.
//
// A task that throws doesn't stop its siblings (mirroring independent machines in the
// real deployment); after the join, the lowest-index exception is rethrown so the
// surfaced error doesn't depend on scheduling.
template <typename Task>
void RunIndexedPhase(size_t n, int threads, const Task& task) {
  const size_t max_workers = threads < 1 ? 1 : static_cast<size_t>(threads);
  const size_t workers = n < max_workers ? n : max_workers;
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  std::vector<std::vector<TraceEvent>> buffers(n);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      TraceThreadBuffer buffer{&buffers[i]};
      try {
        task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    pool.emplace_back(work);
  }
  work();
  for (std::thread& t : pool) {
    t.join();
  }
  for (const std::vector<TraceEvent>& buffer : buffers) {
    TraceAppendCurrent(buffer);
  }
  for (std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

// Default factory: the paper's throughput-optimized subORAM.
class DefaultSubOramFactory final : public SubOramBackendFactory {
 public:
  explicit DefaultSubOramFactory(const SnoopyConfig& config) : config_(config) {}
  std::unique_ptr<SubOramBackend> Create(uint32_t id, uint64_t seed) const override {
    SubOramConfig soc;
    soc.id = id;
    soc.value_size = config_.value_size;
    soc.lambda = config_.lambda;
    soc.sort_threads = config_.sort_threads;
    soc.check_distinct = config_.check_distinct;
    return std::make_unique<SubOram>(soc, seed);
  }

 private:
  SnoopyConfig config_;
};

}  // namespace

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed)
    : Snoopy(config, seed, DefaultSubOramFactory(config)) {}

Snoopy::Snoopy(const SnoopyConfig& config, uint64_t seed,
               const SubOramBackendFactory& factory)
    : config_(config), rng_(seed) {
  if (config_.num_load_balancers == 0 || config_.num_suborams == 0) {
    throw std::invalid_argument("Snoopy needs at least one load balancer and one subORAM");
  }
  partition_key_ = rng_.NextSipKey();

  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    lb_enclaves_.push_back(std::make_unique<Enclave>("snoopy-load-balancer", lb));
    LoadBalancerConfig lbc;
    lbc.id = lb;
    lbc.num_suborams = config_.num_suborams;
    lbc.value_size = config_.value_size;
    lbc.lambda = config_.lambda;
    lbc.sort_threads = config_.sort_threads;
    const uint64_t lb_seed = rng_.Next64();
    lb_base_seeds_.push_back(lb_seed);
    lbs_.push_back(std::make_unique<LoadBalancer>(lbc, partition_key_, lb_seed));
    pending_.emplace_back(config_.value_size);
  }
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    so_enclaves_.push_back(std::make_unique<Enclave>("snoopy-suboram", so));
    suborams_.push_back(factory.Create(so, rng_.Next64()));
  }

  // Attested channel establishment between every load balancer and subORAM pair
  // (paper section 3.1), then endpoint registration on the message network.
  links_.resize(config_.num_load_balancers);
  link_generation_.resize(config_.num_load_balancers);
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    link_generation_[lb].assign(config_.num_suborams, 0);
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(so_enclaves_[so]->quote());
      const Aead::Key check = so_enclaves_[so]->EstablishChannel(lb_enclaves_[lb]->quote());
      if (key != check) {
        throw std::runtime_error("channel key mismatch after attestation");
      }
      const uint32_t link_id = lb * config_.num_suborams + so;
      links_[lb].push_back(std::make_unique<SecureLink>(key, link_id));
      network_.Register(SubOramEndpointName(so, lb),
                        [this, lb, so](std::span<const uint8_t> payload) {
                          return SubOramEndpointHandler(lb, so, payload);
                        });
    }
  }

  // Rollback-protected persistence (paper section 9): a sealing key for the subORAM
  // snapshots plus one trusted monotonic counter per subORAM. Drawn after all other
  // construction-time randomness so existing seeded deployments are unchanged.
  sealed_store_ = std::make_unique<SealedStore>(rng_.NextKey32(), &counters_);
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    so_counter_ids_.push_back(counters_.Create());
  }
  so_snapshots_.resize(config_.num_suborams);
  so_response_cache_.resize(config_.num_suborams);
  so_executed_lbs_.resize(config_.num_suborams);
  network_.set_clock(&clock_);
}

void Snoopy::set_fault_injector(FaultInjector* injector) {
  fault_injector_ = injector;
  network_.set_fault_injector(injector);
}

double Snoopy::NowSeconds() const {
  // Under fault injection the epoch pipeline advances the VirtualClock (retry
  // backoffs, injected delays); spans read the same clock so chaos runs are
  // deterministic. Outside fault injection, wall time.
  return fault_injector_ != nullptr ? clock_.now_s() : SpanTimer::SteadyNowSeconds();
}

Histogram* Snoopy::PhaseHistogram(const char* phase) const {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  return &metrics_->GetHistogram("snoopy_epoch_phase_seconds", {{"phase", phase}});
}

uint64_t Snoopy::EpochSeed(uint32_t lb, uint64_t epoch) const {
  return Mix64(lb_base_seeds_[lb] ^ Mix64(epoch));
}

void Snoopy::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& obj : objects) {
    if (obj.first >= kDummyKeyBase) {
      throw std::invalid_argument("object keys must be below 2^63");
    }
  }
  if (config_.oblivious_init) {
    InitializeOblivious(objects);
  } else {
    std::vector<std::vector<std::pair<uint64_t, std::vector<uint8_t>>>> parts(
        config_.num_suborams);
    for (const auto& obj : objects) {
      parts[lbs_[0]->SubOramOf(obj.first)].push_back(obj);
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      suborams_[so]->Initialize(parts[so]);
    }
  }
  // First rollback-protected snapshot: a subORAM that crashes before its first epoch
  // completes recovers to its freshly loaded partition.
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    SealSubOramState(so);
  }
}

void Snoopy::SealSubOramState(uint32_t so) {
  if (suborams_[so]->SupportsSealing()) {
    so_snapshots_[so] = suborams_[so]->SealState(*sealed_store_, so_counter_ids_[so]);
  }
}

void Snoopy::InitializeOblivious(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  // Paper Figure 23: tag each object with its (secret) partition, obliviously sort by
  // the tag, then split at the (public) partition boundaries. Temporary record layout:
  // bin(4) | pad(4) | key(8) | value.
  const size_t value_size = config_.value_size;
  const size_t stride = 16 + value_size;
  ByteSlab slab(0, stride);
  for (const auto& [key, value] : objects) {
    uint8_t* rec = slab.AppendZero();
    const uint32_t bin = lbs_[0]->SubOramOf(key);
    std::memcpy(rec, &bin, 4);
    std::memcpy(rec + 8, &key, 8);
    const size_t n = value.size() < value_size ? value.size() : value_size;
    std::memcpy(rec + 16, value.data(), n);
  }
  BitonicSortSlab(
      slab,
      [](const uint8_t* a, const uint8_t* b) {
        return LoadSecretU32(a, 0) < LoadSecretU32(b, 0);
      },
      config_.sort_threads);

  // Partition sizes are public (the subORAMs receive their partitions in the clear
  // inside the enclave), so a plain boundary scan is fine here.
  size_t cursor = 0;
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> part;
    while (cursor < slab.size()) {
      uint32_t bin;
      std::memcpy(&bin, slab.Record(cursor), 4);
      if (bin != so) {
        break;
      }
      uint64_t key;
      std::memcpy(&key, slab.Record(cursor) + 8, 8);
      part.emplace_back(key, std::vector<uint8_t>(slab.Record(cursor) + 16,
                                                  slab.Record(cursor) + 16 + value_size));
      ++cursor;
    }
    suborams_[so]->Initialize(part);
  }
}

void Snoopy::SubmitRead(uint64_t client_id, uint64_t client_seq, uint64_t key) {
  SubmitReadWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                   client_seq, key);
}

void Snoopy::SubmitWrite(uint64_t client_id, uint64_t client_seq, uint64_t key,
                         std::span<const uint8_t> value) {
  SubmitWriteWithLb(static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers)), client_id,
                    client_seq, key, value);
}

void Snoopy::SubmitReadWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                              uint64_t key) {
  RequestHeader h;
  h.key = key;
  h.op = kOpRead;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, {});
}

void Snoopy::SubmitWriteWithLb(uint32_t lb, uint64_t client_id, uint64_t client_seq,
                               uint64_t key, std::span<const uint8_t> value) {
  RequestHeader h;
  h.key = key;
  h.op = kOpWrite;
  h.client_id = client_id;
  h.client_seq = client_seq;
  pending_[lb].Append(h, value);
}

void Snoopy::SubmitRequest(const RequestHeader& header, std::span<const uint8_t> value) {
  const auto lb = static_cast<uint32_t>(rng_.Uniform(config_.num_load_balancers));
  pending_[lb].Append(header, value);
}

size_t Snoopy::pending_requests() const {
  size_t n = 0;
  for (const RequestBatch& b : pending_) {
    n += b.size();
  }
  return n;
}

// Batches travel as [epoch id (8 bytes, plaintext) | sealed batch]. The epoch id lets
// the subORAM's host side recognize a retransmission and re-serve the cached sealed
// response instead of re-executing -- retried and duplicated deliveries therefore
// change neither the store state (Appendix C linearizability) nor the enclave's
// memory trace (the batch is processed exactly once).
std::vector<uint8_t> Snoopy::SubOramEndpointHandler(uint32_t lb, uint32_t so,
                                                    std::span<const uint8_t> payload) {
  const std::string endpoint = SubOramEndpointName(so, lb);
  if (payload.size() < 8) {
    throw IntegrityError(endpoint);
  }
  uint64_t batch_epoch = 0;
  std::memcpy(&batch_epoch, payload.data(), 8);
  if (batch_epoch != epoch_) {
    // A stale or bit-flipped epoch tag; either way the sender must retransmit.
    throw IntegrityError(endpoint);
  }
  auto& cache = so_response_cache_[so];
  if (const auto it = cache.find(lb); it != cache.end()) {
    // Retransmit: serve the cached epoch response. Safe to count -- a dedup hit is
    // caused by a network event (duplicate delivery or lost reply) the adversary
    // already observes.
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snoopy_dedup_hits_total").Increment();
    }
    return it->second;
  }
  std::vector<uint8_t> plain;
  if (!links_[lb][so]->a_to_b().Open(payload.subspan(8), plain)) {
    throw IntegrityError(endpoint);
  }
  RequestBatch batch = RequestBatch::Deserialize(plain);
  RequestBatch response = suborams_[so]->ProcessBatch(std::move(batch));
  so_executed_lbs_[so].insert(lb);
  std::vector<uint8_t> sealed_resp = links_[lb][so]->b_to_a().Seal(response.Serialize());
  cache[lb] = sealed_resp;
  return sealed_resp;
}

// One load-balancer-to-subORAM exchange under the retry policy. Seals lazily and only
// once per link generation: a resend must be byte-identical (the dedup cache and the
// channel counters both depend on it), but after a crash recovery rekeys the link, the
// old bytes are for a dead session and the batch must be resealed. A crash observed
// mid-call triggers RecoverSubOram with this call's lb as the replay limit.
std::vector<uint8_t> Snoopy::RetriedSubOramCall(
    uint32_t lb, uint32_t so, const std::vector<uint8_t>& serialized,
    const std::vector<LoadBalancer::PreparedEpoch>* prepared) {
  const std::string endpoint = SubOramEndpointName(so, lb);
  std::vector<uint8_t> envelope;
  uint64_t sealed_generation = ~uint64_t{0};
  auto call = [&]() -> std::vector<uint8_t> {
    if (sealed_generation != link_generation_[lb][so]) {
      const std::vector<uint8_t> sealed = links_[lb][so]->a_to_b().Seal(serialized);
      envelope.assign(8, 0);
      std::memcpy(envelope.data(), &epoch_, 8);
      envelope.insert(envelope.end(), sealed.begin(), sealed.end());
      sealed_generation = link_generation_[lb][so];
    }
    std::vector<uint8_t> sealed_resp =
        network_.Call("lb/" + std::to_string(lb), endpoint, envelope);
    std::vector<uint8_t> plain;
    if (!links_[lb][so]->b_to_a().Open(sealed_resp, plain)) {
      throw IntegrityError(endpoint);
    }
    return plain;
  };

  RetryExecutor executor(config_.retry, /*jitter_seed=*/EpochSeed(lb, epoch_) ^ so, &clock_);
  const std::string caller = "lb/" + std::to_string(lb);
  executor.set_on_retry([this, &caller, &endpoint] {
    network_.RecordRetry(caller, endpoint);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snoopy_retries_total", {{"endpoint", endpoint}}).Increment();
    }
  });
  return executor.Execute(
      call, [&](const EndpointCrashedError&) { RecoverSubOram(so, prepared, lb); });
}

RequestBatch Snoopy::CallSubOram(uint32_t lb, uint32_t so,
                                 const std::vector<LoadBalancer::PreparedEpoch>& prepared) {
  return RequestBatch::Deserialize(RetriedSubOramCall(
      lb, so, prepared[lb].suboram_batches[so].Serialize(), &prepared));
}

void Snoopy::RecoverSubOram(uint32_t so,
                            const std::vector<LoadBalancer::PreparedEpoch>* prepared,
                            uint32_t lb_limit) {
  const std::string component = "suboram/" + std::to_string(so);
  if (!suborams_[so]->SupportsSealing()) {
    throw std::runtime_error(component +
                             " crashed and its backend does not support sealed snapshots");
  }

  // Restore the freshest sealed snapshot. A stale or tampered blob means the host is
  // replaying superseded state; refusing to start is the only safe answer.
  const UnsealStatus status =
      suborams_[so]->RestoreState(*sealed_store_, so_counter_ids_[so], so_snapshots_[so]);
  if (status != UnsealStatus::kOk) {
    throw RollbackDetectedError(component, status);
  }

  // The restarted enclave has no channel state: every load balancer re-attests and
  // both ends start fresh sessions. Bumping the generation invalidates any sealed
  // bytes still held by in-flight callers. The rng_ lock serializes concurrent
  // subORAM recoveries (parallel phase 2); each recovery touches only its own
  // subORAM's links/cache, so the key draw is the lone shared mutation.
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    std::array<uint8_t, 32> key;
    {
      std::lock_guard<std::mutex> g(rng_mu_);
      key = rng_.NextKey32();
    }
    links_[lb][so]->Rekey(key);
    ++link_generation_[lb][so];
  }
  so_response_cache_[so].clear();
  if (fault_injector_ != nullptr) {
    fault_injector_->Restart(component);
  }
  network_.RecordRecovery();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_recoveries_total", {{"component", component}}).Increment();
  }

  // The snapshot predates this epoch's batches; replay the ones the subORAM had
  // already executed (in load-balancer order, the Appendix C linearization) so the
  // restored state catches up to the crash point. The caller's own batch (lb_limit)
  // is excluded -- its pending retry delivers it. Replays run through the normal
  // endpoint path: they repopulate the response cache, tolerate further transient
  // faults, and -- via RetriedSubOramCall's own crash handling -- recover recursively
  // if the component is crashed again mid-replay (safe because the executed set is
  // durable across recoveries and restore is idempotent from the same snapshot).
  // Responses are discarded: re-execution from the same pre-epoch state reproduces
  // the already-delivered answers.
  if (prepared == nullptr) {
    return;
  }
  for (const uint32_t lb : so_executed_lbs_[so]) {
    if (lb >= lb_limit) {
      continue;
    }
    RetriedSubOramCall(lb, so, (*prepared)[lb].suboram_batches[so].Serialize(), prepared);
  }
}

void Snoopy::RecoverLoadBalancer(uint32_t lb) {
  // Load balancers are stateless across epochs (section 4.3): rebuild is a fresh
  // enclave with the same static partition key and config. Its epoch preparation is
  // already deterministic via EpochSeed, so the replacement produces byte-identical
  // batches to the ones the crashed instance would have sent. Pending requests live
  // with the clients in this model; they resubmit into the rebuilt instance.
  lb_enclaves_[lb] = std::make_unique<Enclave>("snoopy-load-balancer", lb);
  const LoadBalancerConfig lbc = lbs_[lb]->config();
  lbs_[lb] = std::make_unique<LoadBalancer>(lbc, partition_key_, lb_base_seeds_[lb]);
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    std::array<uint8_t, 32> key;
    {
      std::lock_guard<std::mutex> g(rng_mu_);
      key = rng_.NextKey32();
    }
    links_[lb][so]->Rekey(key);
    ++link_generation_[lb][so];
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->Restart("lb/" + std::to_string(lb));
  }
  network_.RecordRecovery();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_recoveries_total", {{"component", "lb/" + std::to_string(lb)}})
        .Increment();
  }
}

void Snoopy::RegisterClient(uint64_t client_id, const AttestationQuote& client_quote) {
  if (clients_.count(client_id) != 0) {
    throw std::invalid_argument("client already registered");
  }
  ClientSession session;
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    const Aead::Key key = lb_enclaves_[lb]->EstablishChannel(client_quote);
    // Link ids for client channels live above the LB-subORAM range.
    const uint32_t link_id = 0x40000000u + static_cast<uint32_t>(client_id % 0x3fffffff) *
                                               config_.num_load_balancers +
                             lb;
    session.links.push_back(std::make_unique<SecureLink>(key, link_id));
    network_.Register(
        "lb/" + std::to_string(lb) + "/client/" + std::to_string(client_id),
        [this, client_id, lb](std::span<const uint8_t> sealed) -> std::vector<uint8_t> {
          std::vector<uint8_t> plain;
          if (!clients_.at(client_id).links[lb]->a_to_b().Open(sealed, plain)) {
            throw std::runtime_error("load balancer rejected client request");
          }
          RequestBatch one = RequestBatch::Deserialize(plain);
          for (size_t i = 0; i < one.size(); ++i) {
            pending_[lb].Append(one.Header(i),
                                std::span<const uint8_t>(one.Value(i), one.value_size()));
          }
          return {1};  // ack
        });
  }
  clients_.emplace(client_id, std::move(session));
}

SecureLink& Snoopy::client_link(uint64_t client_id, uint32_t lb) {
  return *clients_.at(client_id).links[lb];
}

std::vector<std::vector<uint8_t>> Snoopy::TakeMailbox(uint64_t client_id) {
  std::vector<std::vector<uint8_t>> out = std::move(clients_.at(client_id).mailbox);
  clients_.at(client_id).mailbox.clear();
  return out;
}

std::vector<ClientResponse> Snoopy::RunEpoch() {
  TraceRecord(TraceOp::kEpoch, epoch_, 0);
  std::vector<ClientResponse> all;

  // Root epoch span plus public epoch facts. Request counts per load balancer are
  // public in Snoopy's model: the network adversary observes which clients talk to
  // which balancer; what stays hidden is the *content* and the key distribution,
  // which never reaches telemetry (the batch size below is the padded f(R, S) of
  // Theorem 3, not the true demand per subORAM).
  const auto now_fn = [this] { return NowSeconds(); };
  SpanTimer epoch_span(
      metrics_ != nullptr ? &metrics_->GetHistogram("snoopy_epoch_seconds") : nullptr, now_fn);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snoopy_epochs_total").Increment();
    metrics_->GetCounter("snoopy_requests_total").Increment(pending_requests());
  }

  // Epoch-boundary crash polling: the failure process fires between epochs (crashes
  // mid-epoch are modelled by crash_before_reply faults on individual calls). A load
  // balancer is rebuilt statelessly; a subORAM is restored from its sealed snapshot
  // (no replay needed -- the snapshot is exactly the pre-epoch state).
  if (fault_injector_ != nullptr) {
    for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
      if (fault_injector_->PollEpochCrash("lb/" + std::to_string(lb))) {
        RecoverLoadBalancer(lb);
      }
    }
    for (uint32_t so = 0; so < config_.num_suborams; ++so) {
      if (fault_injector_->PollEpochCrash("suboram/" + std::to_string(so))) {
        RecoverSubOram(so, nullptr, 0);
      }
    }
  }

  // Phase 1: every load balancer prepares its batches independently (section 4.3) --
  // one parallel task per load balancer. The per-(lb, epoch) seed fixes the epoch's
  // dummy-key randomness, so preparation is a pure function of (pending requests,
  // seed) and thread count changes nothing; a load balancer rebuilt after a crash
  // prepares byte-identical batches for the same reason.
  std::vector<LoadBalancer::PreparedEpoch> prepared(config_.num_load_balancers);
  {
    SpanTimer prepare_span(PhaseHistogram("lb_prepare"), now_fn);
    RunIndexedPhase(config_.num_load_balancers, config_.epoch_threads, [&](size_t lb) {
      RequestBatch requests = std::move(pending_[lb]);
      pending_[lb] = RequestBatch(config_.value_size);
      prepared[lb] = lbs_[lb]->PrepareBatches(std::move(requests),
                                              EpochSeed(static_cast<uint32_t>(lb), epoch_));
      if (metrics_ != nullptr) {
        // The padded per-subORAM batch size f(R, S): public by Theorem 3.
        metrics_->GetHistogram("snoopy_batch_size", {{"lb", std::to_string(lb)}})
            .Observe(static_cast<double>(prepared[lb].batch_size));
      }
    });
  }

  // Phase 2: subORAMs execute the batches -- one task per subORAM, each applying its
  // batches in fixed load-balancer order, which is the linearization order of
  // Appendix C (the order is *per subORAM*, so distinct subORAMs may run
  // concurrently; this is the paper's Figure 9a scaling axis). The per-hop encryption
  // is real: each batch is sealed at the load balancer and opened inside the subORAM
  // endpoint. Every call runs under the retry policy and tolerates injected faults
  // and crashes; per-endpoint fault streams keep every (lb, so) exchange's fault
  // sequence independent of how the subORAM tasks interleave.
  std::vector<std::vector<RequestBatch>> responses(config_.num_load_balancers);
  for (auto& per_lb : responses) {
    per_lb.resize(config_.num_suborams);
  }
  {
    SpanTimer execute_span(PhaseHistogram("suboram_execute"), now_fn);
    RunIndexedPhase(config_.num_suborams, config_.epoch_threads, [&](size_t so) {
      for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
        responses[lb][so] = CallSubOram(lb, static_cast<uint32_t>(so), prepared);
      }
    });
  }

  // Phase 3: match responses to clients. The oblivious matching (Figure 6) is one
  // task per load balancer; delivery stays on the orchestrator thread because sealing
  // into client mailboxes advances per-client channel counters in submission order.
  SpanTimer match_span(PhaseHistogram("response_match"), now_fn);
  std::vector<RequestBatch> matched_by_lb(config_.num_load_balancers);
  RunIndexedPhase(config_.num_load_balancers, config_.epoch_threads, [&](size_t lb) {
    matched_by_lb[lb] =
        lbs_[lb]->MatchResponses(std::move(prepared[lb]), std::move(responses[lb]));
  });
  for (uint32_t lb = 0; lb < config_.num_load_balancers; ++lb) {
    RequestBatch& matched = matched_by_lb[lb];
    for (size_t i = 0; i < matched.size(); ++i) {
      const RequestHeader& h = matched.Header(i);
      const auto session = clients_.find(h.client_id);
      if (session != clients_.end()) {
        // Sealed delivery for registered clients: [lb id | AEAD(response record)].
        RequestBatch one(config_.value_size);
        one.Append(h, std::span<const uint8_t>(matched.Value(i), config_.value_size));
        const std::vector<uint8_t> sealed =
            session->second.links[lb]->b_to_a().Seal(one.Serialize());
        std::vector<uint8_t> blob(4 + sealed.size());
        std::memcpy(blob.data(), &lb, 4);
        std::memcpy(blob.data() + 4, sealed.data(), sealed.size());
        session->second.mailbox.push_back(std::move(blob));
        continue;
      }
      ClientResponse resp;
      resp.client_id = h.client_id;
      resp.client_seq = h.client_seq;
      resp.key = h.key;
      resp.op = h.op;
      resp.value.assign(matched.Value(i), matched.Value(i) + config_.value_size);
      all.push_back(std::move(resp));
    }
  }

  match_span.Stop();

  // Epoch boundary: seal each subORAM's post-epoch state (one trusted-counter bump
  // per subORAM per epoch, paper section 9) and retire the per-epoch dedup state.
  for (uint32_t so = 0; so < config_.num_suborams; ++so) {
    SealSubOramState(so);
    so_response_cache_[so].clear();
    so_executed_lbs_[so].clear();
  }
  ++epoch_;
  epoch_span.Stop();
  if (metrics_ != nullptr) {
    network_.ExportTo(*metrics_);
  }
  return all;
}

}  // namespace snoopy
