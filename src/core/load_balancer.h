// The oblivious load balancer (paper section 4).
//
// Per epoch a load balancer takes the client requests it received, obliviously builds
// one equal-sized batch per subORAM (Figure 5), ships the batches, and -- when the
// subORAM responses come back -- obliviously matches them to the original requests
// (Figure 6). Batch size is the public bound f(R, S) of Theorem 3, so the batch
// structure leaks nothing about request contents; duplicate requests are aggregated
// with last-write-wins so skewed workloads cannot overflow a batch.
//
// Load balancers are stateless across epochs and share only the static partitioning
// key, which is what lets Snoopy add load balancers without coordination (section 4.3).

#ifndef SNOOPY_SRC_CORE_LOAD_BALANCER_H_
#define SNOOPY_SRC_CORE_LOAD_BALANCER_H_

#include <cstdint>
#include <vector>

#include "src/core/request.h"
#include "src/crypto/rng.h"
#include "src/crypto/siphash.h"
#include "src/obl/bucket_sort.h"

namespace snoopy {

struct LoadBalancerConfig {
  uint32_t id = 0;
  uint32_t num_suborams = 1;
  size_t value_size = 160;
  uint32_t lambda = kDefaultLambda;
  int sort_threads = 1;
  // Strategy for the load balancer's oblivious sorts. Both load-balancer sorts are
  // bucket-INELIGIBLE -- PrepareBatches sorts pre-dedup requests whose bin tags
  // repeat per duplicate key (revealing them leaks key multiplicity), MatchResponses
  // sorts by secret object id with no bin structure at all -- so both resolve to the
  // bitonic fallback regardless of this setting. The field exists so the config
  // plumbs uniformly and future simulatable sites can opt in.
  SortStrategy sort_strategy = SortStrategy::kBitonic;
};

class LoadBalancer {
 public:
  // `partition_key` is the keyed-hash key mapping objects to subORAMs; it is shared by
  // all load balancers and unknown to the adversary.
  LoadBalancer(const LoadBalancerConfig& config, const SipKey& partition_key,
               uint64_t rng_seed);

  // Which subORAM stores `key`. Also used at initialization time to partition data.
  uint32_t SubOramOf(uint64_t key) const;

  // Everything the load balancer must remember between sending batches and receiving
  // responses: the original request list (for matching) and the epoch's batch size.
  struct PreparedEpoch {
    std::vector<RequestBatch> suboram_batches;  // one per subORAM, each of size B
    RequestBatch originals;                     // the R client requests, bins computed
    uint64_t batch_size = 0;                    // B = f(R, S)
  };

  // Figure 5. Consumes the epoch's client requests (any number, any distribution) and
  // produces S batches of exactly f(R, S) distinct-key requests each. Aborts (throws)
  // only on the negligible-probability bound overflow.
  PreparedEpoch PrepareBatches(RequestBatch&& client_requests);

  // Same, but with the epoch's dummy-key randomness fixed by `epoch_seed`: preparing
  // the same requests under the same seed yields byte-identical batches. This is what
  // makes load balancers rebuildable after a crash (paper section 4.3 -- they are
  // stateless across epochs): the orchestrator derives epoch_seed from (load balancer
  // id, epoch number), so a replacement re-prepares its epoch deterministically.
  PreparedEpoch PrepareBatches(RequestBatch&& client_requests, uint64_t epoch_seed);

  // Figure 6. Consumes the prepared state plus the S response batches and returns one
  // response record per original client request (header carries client_id/client_seq;
  // value carries the response payload).
  RequestBatch MatchResponses(PreparedEpoch&& epoch, std::vector<RequestBatch>&& responses);

  const LoadBalancerConfig& config() const { return config_; }

 private:
  LoadBalancerConfig config_;
  SipKey partition_key_;
  Rng rng_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_LOAD_BALANCER_H_
