#include "src/core/suboram.h"

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/hash_table.h"
#include "src/obl/kernels.h"
#include "src/obl/parallel.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/telemetry/tracing.h"

namespace snoopy {

SubOram::SubOram(const SubOramConfig& config, uint64_t rng_seed)
    : config_(config), rng_(rng_seed), store_(0, 8 + config.value_size) {}

void SubOram::Initialize(ByteSlab&& objects) {
  if (objects.record_bytes() != 8 + config_.value_size) {
    throw std::invalid_argument("object record size does not match subORAM value size");
  }
  store_ = std::move(objects);
}

void SubOram::Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  ByteSlab slab(0, 8 + config_.value_size);
  for (const auto& [key, value] : objects) {
    uint8_t* rec = slab.AppendZero();
    std::memcpy(rec, &key, 8);
    const size_t n = value.size() < config_.value_size ? value.size() : config_.value_size;
    std::memcpy(rec + 8, value.data(), n);
  }
  store_ = std::move(slab);
}

RequestBatch SubOram::ProcessBatch(RequestBatch&& batch) {
  const size_t b = batch.size();
  const size_t value_size = config_.value_size;
  if (batch.value_size() != value_size) {
    throw std::invalid_argument("batch value size does not match subORAM value size");
  }

  // Step spans: every boundary below is a public point in the batch pipeline (the
  // batch size is the padded f(R, S); the object count and thread split are public
  // deployment facts), so the spans reveal nothing the schedule does not. Spans
  // open/close *outside* the oblivious regions; only their RAII lifetimes bracket
  // region code.
  TraceSpan distinct_trace(&Tracer::Global(), "step", "suboram_distinct", config_.id);
  distinct_trace.SetArg("batch", b);

  // SNOOPY_OBLIVIOUS_BEGIN(suboram_distinct)
  // ct-public: b i config_ check_distinct
  // Definition 2 precondition: the batch must contain no duplicate keys. Checked with
  // an oblivious sort over a copy of the key column plus one linear scan. The presence
  // of a duplicate is declassified (it aborts the whole batch, a protocol violation by
  // the load balancer); which key collided is not.
  if (config_.check_distinct && b > 1) {
    std::vector<uint64_t> keys(b);
    for (size_t i = 0; i < b; ++i) {
      keys[i] = batch.Header(i).key;
    }
    BitonicSort(std::span<uint64_t>(keys), [](const uint64_t& x, const uint64_t& y) {
      return SecretU64(x) < SecretU64(y);
    });
    SecretU64 dups = 0;
    for (size_t i = 1; i < b; ++i) {
      dups += CtSelectU64(SecretU64(keys[i - 1]) == SecretU64(keys[i]), 1, 0);
    }
    if ((dups != SecretU64(0)).Declassify("suboram.batch_has_dups")) {
      throw std::invalid_argument("subORAM batch contains duplicate keys");
    }
  }
  // SNOOPY_OBLIVIOUS_END(suboram_distinct)
  distinct_trace.End();

  // Step 1 (Fig. 7): build the per-batch oblivious hash table with fresh keys.
  TraceSpan build_trace(&Tracer::Global(), "step", "suboram_oht_build", config_.id);
  build_trace.SetArg("batch", b);
  TwoTierOht table(kRequestOhtSchema, config_.lambda);
  // Sort width clamped to the pool task's thread budget (no-op outside the pool):
  // nested sort parallelism must borrow the shared pool, never spawn over it.
  if (!table.Build(std::move(batch.slab()), rng_, PoolClampedThreads(config_.sort_threads),
                   config_.sort_strategy)) {
    throw std::runtime_error("oblivious hash table construction overflow (negligible event)");
  }
  build_trace.End();

  // Step 2 (Fig. 7): one linear scan over every stored object. For each object, scan
  // its two candidate buckets in full; for every slot apply the oblivious
  // compare-and-set pair so that neither the match nor the request type is revealed.
  //
  // With scan_threads > 1 (Figure 13b) the object range is split across threads.
  // Distinct objects can share a hash bucket, and the oblivious compare-and-set
  // rewrites every scanned slot unconditionally, so bucket access is serialized with
  // per-bucket locks. Lock *indices* derive from object keys, which are public
  // identities, so locking adds no leakage beyond the bucket trace itself.
  const size_t stride = table.record_bytes();
  const std::vector<uint8_t> zeros(value_size, 0);
  const size_t n_objects = store_.size();
  const int threads =
      config_.scan_threads > 1 && n_objects >= 1024 ? config_.scan_threads : 1;
  std::vector<std::mutex> tier1_locks(threads > 1 ? table.params().bins1 : 0);
  std::vector<std::mutex> tier2_locks(
      threads > 1 && table.params().bins2 > 0 ? table.params().bins2 : 0);

  // SNOOPY_OBLIVIOUS_BEGIN(suboram_scan)
  // ct-public: i off begin end stride value_size bucket threads
  // ct-public: obj_key table tier1_locks tier2_locks
  auto scan_range = [&](size_t begin, size_t end) {
    std::vector<uint8_t> old_value(value_size);
    for (size_t i = begin; i < end; ++i) {
      TraceRecord(TraceOp::kRead, i);
      uint8_t* obj = store_.Record(i);
      uint64_t obj_key;
      std::memcpy(&obj_key, obj, 8);
      uint8_t* obj_value = obj + 8;

      auto apply = [&](std::span<uint8_t> bucket) {
        for (size_t off = 0; off + stride <= bucket.size(); off += stride) {
          auto* req = reinterpret_cast<RequestHeader*>(bucket.data() + off);
          uint8_t* req_value = bucket.data() + off + RequestBatch::kHeaderBytes;
          // Request contents (key, op, dummy flag, access decision) are secret; the
          // object key being scanned is public (the scan visits all of them).
          const SecretBool match = (SecretU64(req->key) == obj_key) &
                                   !SecretBool::FromWord(req->dummy);
          const SecretBool is_write = SecretU64(req->op) == SecretU64(kOpWrite);
          const SecretBool granted = SecretBool::FromWord(req->granted);
          // old <- object value (staged so the write below can both update the object
          // and leave the pre-state for the response). The three conditional moves go
          // through the SIMD kernel layer; each derives its mask once per slot.
          std::memcpy(old_value.data(), obj_value, value_size);
          // Write path: object <- request payload (if a granted write matches).
          KernelCondCopyBytes(match & is_write & granted, obj_value, req_value, value_size);
          // Response path: request slot <- pre-state (for reads and writes alike).
          KernelCondCopyBytes(match, req_value, old_value.data(), value_size);
          // Access control (section D): a denied read returns null rather than data.
          KernelCondCopyBytes(match & !granted, req_value, zeros.data(), value_size);
        }
      };
      if (threads > 1) {
        {
          std::lock_guard<std::mutex> guard(
              tier1_locks[table.Tier1BucketIndex(obj_key)]);
          apply(table.Tier1Bucket(obj_key));
        }
        if (!tier2_locks.empty()) {
          std::lock_guard<std::mutex> guard(
              tier2_locks[table.Tier2BucketIndex(obj_key)]);
          apply(table.Tier2Bucket(obj_key));
        }
      } else {
        apply(table.Tier1Bucket(obj_key));
        apply(table.Tier2Bucket(obj_key));
      }
    }
  };
  // SNOOPY_OBLIVIOUS_END(suboram_scan)

  TraceSpan scan_trace(&Tracer::Global(), "step", "suboram_scan", config_.id);
  scan_trace.SetArg("objects", n_objects);
  scan_trace.SetArg("scan_threads", static_cast<uint64_t>(threads));
  if (threads <= 1) {
    scan_range(0, n_objects);
  } else {
    // Parallel path. The scan is split into fixed-size chunks whose boundaries depend
    // only on (n_objects, threads) — both public — so the split itself leaks nothing.
    // A marker event records the parallel structure, then each worker buffers its
    // trace events thread-locally (the shared recorder is not thread-safe) and the
    // buffers are merged in chunk-index order, reproducing the sequential kRead
    // sequence deterministically.
    TraceRecord(TraceOp::kParallelScan, static_cast<uint64_t>(threads), n_objects);
    std::vector<std::thread> workers;
    std::vector<std::vector<TraceEvent>> chunk_events(static_cast<size_t>(threads));
    const size_t chunk = (n_objects + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const size_t begin = t * chunk;
      const size_t end = begin + chunk < n_objects ? begin + chunk : n_objects;
      if (begin >= end) {
        break;
      }
      std::vector<TraceEvent>* sink = &chunk_events[static_cast<size_t>(t)];
      workers.emplace_back([&, begin, end, sink] {
        TraceThreadBuffer buffer{sink};
        scan_range(begin, end);
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    for (const std::vector<TraceEvent>& events : chunk_events) {
      TraceAppendCurrent(events);
    }
  }

  scan_trace.End();

  // Step 3 (Fig. 7): compact the table's padding dummies away and return the B
  // responses (including responses to the load balancer's dummy requests).
  TraceSpan extract_trace(&Tracer::Global(), "step", "suboram_extract", config_.id);
  ByteSlab responses = table.ExtractAll();
  RequestBatch out(std::move(responses), value_size);
  for (size_t i = 0; i < out.size(); ++i) {
    out.Header(i).resp = 1;
  }
  return out;
}

std::vector<uint8_t> SubOram::SealState(SealedStore& store, uint64_t counter_id) const {
  // Payload: value_size(8) | record count(8) | raw partition bytes.
  const uint64_t vs = config_.value_size;
  const uint64_t count = store_.size();
  std::vector<uint8_t> payload(16 + count * store_.record_bytes());
  std::memcpy(payload.data(), &vs, 8);
  std::memcpy(payload.data() + 8, &count, 8);
  if (count > 0) {
    std::memcpy(payload.data() + 16, store_.data(), count * store_.record_bytes());
  }
  return store.Seal(counter_id, payload);
}

UnsealStatus SubOram::RestoreState(SealedStore& store, uint64_t counter_id,
                                   std::span<const uint8_t> blob) {
  std::vector<uint8_t> payload;
  const UnsealStatus status = store.Unseal(counter_id, blob, &payload);
  if (status != UnsealStatus::kOk) {
    return status;
  }
  uint64_t vs = 0;
  uint64_t count = 0;
  std::memcpy(&vs, payload.data(), 8);
  std::memcpy(&count, payload.data() + 8, 8);
  if (vs != config_.value_size) {
    return UnsealStatus::kCorrupt;
  }
  ByteSlab slab(static_cast<size_t>(count), 8 + config_.value_size);
  if (count > 0) {
    std::memcpy(slab.data(), payload.data() + 16, count * slab.record_bytes());
  }
  store_ = std::move(slab);
  return UnsealStatus::kOk;
}

bool SubOram::DebugRead(uint64_t key, std::vector<uint8_t>* value_out) const {
  for (size_t i = 0; i < store_.size(); ++i) {
    uint64_t k;
    std::memcpy(&k, store_.Record(i), 8);
    if (k == key) {
      if (value_out != nullptr) {
        value_out->assign(store_.Record(i) + 8, store_.Record(i) + 8 + config_.value_size);
      }
      return true;
    }
  }
  return false;
}

}  // namespace snoopy
