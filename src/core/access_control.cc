#include "src/core/access_control.h"

#include <cstring>
#include <map>
#include <stdexcept>

namespace snoopy {

namespace {

// The ACL store only holds one verdict byte per rule, padded to a small fixed value.
constexpr size_t kAclValueSize = 8;

}  // namespace

AccessControlledSnoopy::AccessControlledSnoopy(const SnoopyConfig& data_config,
                                               const SnoopyConfig& acl_config,
                                               uint64_t seed) {
  SnoopyConfig acl = acl_config;
  acl.value_size = kAclValueSize;
  data_ = std::make_unique<Snoopy>(data_config, seed);
  acl_ = std::make_unique<Snoopy>(acl, seed + 1);
  Rng rng(seed + 2);
  rule_hash_key_ = rng.NextSipKey();
}

uint64_t AccessControlledSnoopy::RuleKey(uint64_t user, uint64_t object, uint8_t op) const {
  uint8_t buf[17];
  std::memcpy(buf, &user, 8);
  std::memcpy(buf + 8, &object, 8);
  buf[16] = op;
  return SipHash24(rule_hash_key_, std::span<const uint8_t>(buf, sizeof(buf))) &
         (kDummyKeyBase - 1);
}

void AccessControlledSnoopy::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects,
    const std::vector<AccessRule>& rules) {
  data_->Initialize(objects);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> acl_objects;
  acl_objects.reserve(rules.size());
  for (const AccessRule& rule : rules) {
    std::vector<uint8_t> verdict(kAclValueSize, 0);
    verdict[0] = rule.allowed ? 1 : 0;
    acl_objects.emplace_back(RuleKey(rule.user, rule.object, rule.op), std::move(verdict));
  }
  acl_->Initialize(acl_objects);
}

void AccessControlledSnoopy::SubmitRead(uint64_t user, uint64_t client_seq, uint64_t key) {
  pending_.push_back(PendingRequest{user, client_seq, key, kOpRead, {}});
}

void AccessControlledSnoopy::SubmitWrite(uint64_t user, uint64_t client_seq, uint64_t key,
                                         std::span<const uint8_t> value) {
  pending_.push_back(
      PendingRequest{user, client_seq, key, kOpWrite,
                     std::vector<uint8_t>(value.begin(), value.end())});
}

std::vector<ClientResponse> AccessControlledSnoopy::RunEpoch() {
  // Epoch 1: oblivious verdict lookups. The load balancer acts as the client of the
  // rule store; the sequence number indexes back into the pending list.
  for (size_t i = 0; i < pending_.size(); ++i) {
    const PendingRequest& req = pending_[i];
    acl_->SubmitRead(/*client_id=*/0, /*client_seq=*/i, RuleKey(req.user, req.key, req.op));
  }
  std::map<uint64_t, uint8_t> verdicts;
  for (const ClientResponse& resp : acl_->RunEpoch()) {
    verdicts[resp.client_seq] = resp.value.empty() ? 0 : resp.value[0];
  }

  // Epoch 2: the data epoch, with each request's granted bit attached.
  for (size_t i = 0; i < pending_.size(); ++i) {
    const PendingRequest& req = pending_[i];
    RequestHeader h;
    h.key = req.key;
    h.op = req.op;
    h.granted = verdicts.count(i) != 0 ? verdicts[i] : 0;
    h.client_id = req.user;
    h.client_seq = req.client_seq;
    data_->SubmitRequest(h, req.value);
  }
  pending_.clear();
  return data_->RunEpoch();
}

}  // namespace snoopy
