// Pluggable subORAM backends.
//
// "Snoopy can be deployed using any oblivious storage scheme for hardware enclaves as
// a subORAM" (paper section 3.1); the evaluation demonstrates this by running Oblix
// under the Snoopy load balancer (Figure 10). This interface is that seam: the
// orchestrator only needs batch execution over a partition. Two implementations ship:
//   - SubOram (core/suboram.h): the paper's throughput-optimized linear-scan design;
//   - OblixSubOramBackend (below): a latency-optimized tree-ORAM backend that serves
//     the batch as sequential doubly-oblivious Path ORAM accesses.

#ifndef SNOOPY_SRC_CORE_SUBORAM_BACKEND_H_
#define SNOOPY_SRC_CORE_SUBORAM_BACKEND_H_

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/core/request.h"
#include "src/enclave/rollback.h"
#include "src/obl/slab.h"

namespace snoopy {

class SubOramBackend {
 public:
  virtual ~SubOramBackend() = default;

  // Loads the partition (distinct keys < kDummyKeyBase).
  virtual void Initialize(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) = 0;

  // Executes one distinct-key batch; returns exactly batch.size() response records
  // with resp = 1. Must satisfy the Definition 2 contract (reads return the pre-batch
  // value; the last write per key applies).
  virtual RequestBatch ProcessBatch(RequestBatch&& batch) = 0;

  virtual size_t num_objects() const = 0;

  // --- Rollback-protected persistence (paper section 9) ---------------------------
  // Optional: backends that can seal their partition to a counter-bound snapshot and
  // restore it after a crash override these three. The orchestrator snapshots every
  // sealing backend at each epoch boundary and uses RestoreState to recover a crashed
  // subORAM; backends without sealing support simply cannot be crash-recovered.
  virtual bool SupportsSealing() const { return false; }
  virtual std::vector<uint8_t> SealState(SealedStore& store, uint64_t counter_id) const {
    (void)store;
    (void)counter_id;
    return {};
  }
  virtual UnsealStatus RestoreState(SealedStore& store, uint64_t counter_id,
                                    std::span<const uint8_t> blob) {
    (void)store;
    (void)counter_id;
    (void)blob;
    return UnsealStatus::kCorrupt;
  }

  // --- Partition export (elastic resharding) --------------------------------------
  // Optional: backends that can hand their partition back as a flat
  // key(8) | value(value_size) slab override these two. Resharding gathers every
  // partition through this hook before obliviously redistributing the key space;
  // backends without export support cannot be resharded.
  virtual bool SupportsExport() const { return false; }
  virtual ByteSlab ExportSlab() const {
    throw std::logic_error("subORAM backend does not support partition export");
  }
};

// Factory signature the orchestrator consumes: (partition id, seed) -> backend.
struct SubOramBackendFactory {
  virtual ~SubOramBackendFactory() = default;
  virtual std::unique_ptr<SubOramBackend> Create(uint32_t id, uint64_t seed) const = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CORE_SUBORAM_BACKEND_H_
