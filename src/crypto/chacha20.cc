#include "src/crypto/chacha20.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obl/kernels.h"

namespace snoopy {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

inline uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

#if SNOOPY_KERNELS_X86

// Multi-block keystream in the lane-broadcast formulation: vector word w holds
// ChaCha state word w for L consecutive blocks, one block per 32-bit lane. The
// counter word gets per-lane offsets 0..L-1 (epi32 adds wrap mod 2^32 exactly
// like the scalar ++counter). After the 20 rounds and the feed-forward add,
// a 4x4 (per 128-bit lane) word transpose turns lane-major vectors back into
// contiguous 64-byte blocks, which are XORed straight into the data buffer.
//
// ChaCha is data-oblivious by construction (pure ARX on uniform-trip loops),
// so the vector forms below change only throughput, never the access pattern.

#define SNOOPY_CHACHA_QR_SSE2(a, b, c, d)                             \
  do {                                                                \
    a = _mm_add_epi32(a, b);                                          \
    d = _mm_xor_si128(d, a);                                          \
    d = _mm_or_si128(_mm_slli_epi32(d, 16), _mm_srli_epi32(d, 16));   \
    c = _mm_add_epi32(c, d);                                          \
    b = _mm_xor_si128(b, c);                                          \
    b = _mm_or_si128(_mm_slli_epi32(b, 12), _mm_srli_epi32(b, 20));   \
    a = _mm_add_epi32(a, b);                                          \
    d = _mm_xor_si128(d, a);                                          \
    d = _mm_or_si128(_mm_slli_epi32(d, 8), _mm_srli_epi32(d, 24));    \
    c = _mm_add_epi32(c, d);                                          \
    b = _mm_xor_si128(b, c);                                          \
    b = _mm_or_si128(_mm_slli_epi32(b, 7), _mm_srli_epi32(b, 25));    \
  } while (0)

// XORs four consecutive keystream blocks (counter .. counter+3) into data.
void CryptBlocks4Sse2(const uint32_t* state, uint8_t* data) {
  __m128i v[16];
  __m128i init[16];
  for (int w = 0; w < 16; ++w) {
    v[w] = _mm_set1_epi32(static_cast<int>(state[w]));
  }
  v[12] = _mm_add_epi32(v[12], _mm_setr_epi32(0, 1, 2, 3));
  for (int w = 0; w < 16; ++w) {
    init[w] = v[w];
  }
  for (int round = 0; round < 10; ++round) {
    SNOOPY_CHACHA_QR_SSE2(v[0], v[4], v[8], v[12]);
    SNOOPY_CHACHA_QR_SSE2(v[1], v[5], v[9], v[13]);
    SNOOPY_CHACHA_QR_SSE2(v[2], v[6], v[10], v[14]);
    SNOOPY_CHACHA_QR_SSE2(v[3], v[7], v[11], v[15]);
    SNOOPY_CHACHA_QR_SSE2(v[0], v[5], v[10], v[15]);
    SNOOPY_CHACHA_QR_SSE2(v[1], v[6], v[11], v[12]);
    SNOOPY_CHACHA_QR_SSE2(v[2], v[7], v[8], v[13]);
    SNOOPY_CHACHA_QR_SSE2(v[3], v[4], v[9], v[14]);
  }
  for (int w = 0; w < 16; ++w) {
    v[w] = _mm_add_epi32(v[w], init[w]);
  }
  for (int g = 0; g < 4; ++g) {
    const __m128i t0 = _mm_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
    const __m128i t1 = _mm_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
    const __m128i t2 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
    const __m128i t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
    const __m128i rows[4] = {_mm_unpacklo_epi64(t0, t2), _mm_unpackhi_epi64(t0, t2),
                             _mm_unpacklo_epi64(t1, t3), _mm_unpackhi_epi64(t1, t3)};
    for (int blk = 0; blk < 4; ++blk) {
      uint8_t* p = data + blk * ChaCha20::kBlockBytes + g * 16;
      const __m128i dv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm_xor_si128(dv, rows[blk]));
    }
  }
}

#undef SNOOPY_CHACHA_QR_SSE2

#define SNOOPY_CHACHA_QR_AVX2(a, b, c, d)                                      \
  do {                                                                         \
    a = _mm256_add_epi32(a, b);                                                \
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot16);                    \
    c = _mm256_add_epi32(c, d);                                                \
    b = _mm256_xor_si256(b, c);                                                \
    b = _mm256_or_si256(_mm256_slli_epi32(b, 12), _mm256_srli_epi32(b, 20));   \
    a = _mm256_add_epi32(a, b);                                                \
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot8);                     \
    c = _mm256_add_epi32(c, d);                                                \
    b = _mm256_xor_si256(b, c);                                                \
    b = _mm256_or_si256(_mm256_slli_epi32(b, 7), _mm256_srli_epi32(b, 25));    \
  } while (0)

// XORs eight consecutive keystream blocks (counter .. counter+7) into data.
__attribute__((target("avx2"))) void CryptBlocks8Avx2(const uint32_t* state, uint8_t* data) {
  // Byte-shuffle rotates for the 16- and 8-bit cases (one shuffle beats two
  // shifts plus an or); the masks repeat per 128-bit lane as shuffle_epi8 does.
  const __m256i rot16 = _mm256_setr_epi8(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
                                         2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  const __m256i rot8 = _mm256_setr_epi8(3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
                                        3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
  __m256i v[16];
  __m256i init[16];
  for (int w = 0; w < 16; ++w) {
    v[w] = _mm256_set1_epi32(static_cast<int>(state[w]));
  }
  v[12] = _mm256_add_epi32(v[12], _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  for (int w = 0; w < 16; ++w) {
    init[w] = v[w];
  }
  for (int round = 0; round < 10; ++round) {
    SNOOPY_CHACHA_QR_AVX2(v[0], v[4], v[8], v[12]);
    SNOOPY_CHACHA_QR_AVX2(v[1], v[5], v[9], v[13]);
    SNOOPY_CHACHA_QR_AVX2(v[2], v[6], v[10], v[14]);
    SNOOPY_CHACHA_QR_AVX2(v[3], v[7], v[11], v[15]);
    SNOOPY_CHACHA_QR_AVX2(v[0], v[5], v[10], v[15]);
    SNOOPY_CHACHA_QR_AVX2(v[1], v[6], v[11], v[12]);
    SNOOPY_CHACHA_QR_AVX2(v[2], v[7], v[8], v[13]);
    SNOOPY_CHACHA_QR_AVX2(v[3], v[4], v[9], v[14]);
  }
  for (int w = 0; w < 16; ++w) {
    v[w] = _mm256_add_epi32(v[w], init[w]);
  }
  // Per-group transpose leaves u[g][j] = [block j words 4g..4g+3 | block j+4
  // words 4g..4g+3]; permute2x128 stitches the halves into contiguous blocks.
  __m256i u[4][4];
  for (int g = 0; g < 4; ++g) {
    const __m256i t0 = _mm256_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
    const __m256i t1 = _mm256_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
    const __m256i t2 = _mm256_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
    const __m256i t3 = _mm256_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
    u[g][0] = _mm256_unpacklo_epi64(t0, t2);
    u[g][1] = _mm256_unpackhi_epi64(t0, t2);
    u[g][2] = _mm256_unpacklo_epi64(t1, t3);
    u[g][3] = _mm256_unpackhi_epi64(t1, t3);
  }
  for (int j = 0; j < 4; ++j) {
    const __m256i rows[2][2] = {
        {_mm256_permute2x128_si256(u[0][j], u[1][j], 0x20),
         _mm256_permute2x128_si256(u[2][j], u[3][j], 0x20)},
        {_mm256_permute2x128_si256(u[0][j], u[1][j], 0x31),
         _mm256_permute2x128_si256(u[2][j], u[3][j], 0x31)}};
    for (int hb = 0; hb < 2; ++hb) {
      uint8_t* p = data + (j + 4 * hb) * ChaCha20::kBlockBytes;
      const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), _mm256_xor_si256(d0, rows[hb][0]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 32),
                          _mm256_xor_si256(d1, rows[hb][1]));
    }
  }
}

#undef SNOOPY_CHACHA_QR_AVX2

#endif  // SNOOPY_KERNELS_X86

}  // namespace

ChaCha20::ChaCha20(std::span<const uint8_t> key, std::span<const uint8_t> nonce,
                   uint32_t counter) {
  assert(key.size() == kKeyBytes);
  assert(nonce.size() == kNonceBytes);
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = Load32Le(key.data() + 4 * i);
  }
  state_[12] = counter;
  state_[13] = Load32Le(nonce.data());
  state_[14] = Load32Le(nonce.data() + 4);
  state_[15] = Load32Le(nonce.data() + 8);
}

void ChaCha20::KeystreamBlock(uint32_t counter, std::array<uint8_t, kBlockBytes>& out) const {
  std::array<uint32_t, 16> x = state_;
  x[12] = counter;
  const std::array<uint32_t, 16> initial = x;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    Store32Le(out.data() + 4 * i, x[i] + initial[i]);
  }
}

void ChaCha20::Crypt(uint8_t* data, size_t len) {
  size_t i = 0;
  // Drain buffered keystream from a previous partial block first so the SIMD
  // fast path always starts on a block boundary.
  if (partial_used_ < kBlockBytes) {
    const size_t take = std::min(len, kBlockBytes - partial_used_);
    for (size_t j = 0; j < take; ++j) {
      data[j] ^= partial_[partial_used_ + j];
    }
    partial_used_ += take;
    i = take;
  }
#if SNOOPY_KERNELS_X86
  // Whole-block batches via the vector keystream. The batch width is picked by
  // the public kernel backend; counter arithmetic wraps mod 2^32 exactly like
  // the scalar per-block increment.
  {
    const KernelBackend backend = ActiveKernelBackend();
    if (backend == KernelBackend::kAVX2 || backend == KernelBackend::kAVX512) {
      while (len - i >= 8 * kBlockBytes) {
        CryptBlocks8Avx2(state_.data(), data + i);
        state_[12] += 8;
        i += 8 * kBlockBytes;
      }
    }
    if (backend != KernelBackend::kGeneric) {
      while (len - i >= 4 * kBlockBytes) {
        CryptBlocks4Sse2(state_.data(), data + i);
        state_[12] += 4;
        i += 4 * kBlockBytes;
      }
    }
  }
#endif
  while (i < len) {
    if (partial_used_ == kBlockBytes) {
      KeystreamBlock(state_[12], partial_);
      ++state_[12];
      partial_used_ = 0;
    }
    const size_t take = std::min(len - i, kBlockBytes - partial_used_);
    for (size_t j = 0; j < take; ++j) {
      data[i + j] ^= partial_[partial_used_ + j];
    }
    partial_used_ += take;
    i += take;
  }
}

}  // namespace snoopy
