// ChaCha20 stream cipher (RFC 8439). Keystream generation and in-place XOR encryption.
//
// Together with Poly1305 this forms the AEAD protecting all inter-enclave and
// client-enclave traffic (paper section 3.1: "all communication is encrypted using an
// authenticated encryption scheme with a nonce to prevent replay attacks").

#ifndef SNOOPY_SRC_CRYPTO_CHACHA20_H_
#define SNOOPY_SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace snoopy {

class ChaCha20 {
 public:
  static constexpr size_t kKeyBytes = 32;
  static constexpr size_t kNonceBytes = 12;
  static constexpr size_t kBlockBytes = 64;

  ChaCha20(std::span<const uint8_t> key, std::span<const uint8_t> nonce, uint32_t counter = 0);

  // XORs the keystream into data, in place.
  void Crypt(uint8_t* data, size_t len);

  // Produces one 64-byte keystream block for the given counter without advancing state.
  void KeystreamBlock(uint32_t counter, std::array<uint8_t, kBlockBytes>& out) const;

 private:
  std::array<uint32_t, 16> state_;
  std::array<uint8_t, kBlockBytes> partial_;
  size_t partial_used_ = kBlockBytes;  // no buffered keystream initially
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_CHACHA20_H_
