// HMAC-SHA256 (RFC 2104) and HKDF-style key derivation.
//
// Snoopy derives per-epoch hash-table keys and per-channel encryption keys from a root
// secret established at attestation time; HMAC is the PRF behind those derivations.

#ifndef SNOOPY_SRC_CRYPTO_HMAC_H_
#define SNOOPY_SRC_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "src/crypto/sha256.h"

namespace snoopy {

using Mac256 = std::array<uint8_t, 32>;

Mac256 HmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message);

// Derives a 32-byte subkey from `root` bound to a context label and a counter.
// (HKDF-Expand specialized to a single 32-byte output block.)
Mac256 DeriveKey(std::span<const uint8_t> root, std::string_view label, uint64_t counter);

// Recomputes the MAC and compares it against `mac` in constant time. The verdict is
// declassified through the Secret<T> audit trail (site "hmac.verify").
bool VerifyHmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message,
                      std::span<const uint8_t> mac);

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_HMAC_H_
