#include "src/crypto/siphash.h"

#include <cstring>

namespace snoopy {

namespace {

inline uint64_t Rotl64(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

inline uint64_t Load64Le(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // host is little-endian on all supported targets
}

inline void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl64(v1, 13);
  v1 ^= v0;
  v0 = Rotl64(v0, 32);
  v2 += v3;
  v3 = Rotl64(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl64(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl64(v1, 17);
  v1 ^= v2;
  v2 = Rotl64(v2, 32);
}

}  // namespace

uint64_t SipHash24(const SipKey& key, std::span<const uint8_t> data) {
  const uint64_t k0 = Load64Le(key.data());
  const uint64_t k1 = Load64Le(key.data() + 8);

  uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const size_t len = data.size();
  const size_t end = len - (len % 8);
  for (size_t i = 0; i < end; i += 8) {
    const uint64_t m = Load64Le(data.data() + i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  uint64_t b = static_cast<uint64_t>(len & 0xff) << 56;
  for (size_t i = end; i < len; ++i) {
    b |= static_cast<uint64_t>(data[i]) << (8 * (i - end));
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

uint64_t SipHash24(const SipKey& key, uint64_t value) {
  uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  return SipHash24(key, std::span<const uint8_t>(buf, 8));
}

}  // namespace snoopy
