// Poly1305 one-time authenticator (RFC 8439).

#ifndef SNOOPY_SRC_CRYPTO_POLY1305_H_
#define SNOOPY_SRC_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace snoopy {

class Poly1305 {
 public:
  static constexpr size_t kKeyBytes = 32;
  static constexpr size_t kTagBytes = 16;
  using Tag = std::array<uint8_t, kTagBytes>;

  explicit Poly1305(std::span<const uint8_t> key);

  void Update(const uint8_t* data, size_t len);
  Tag Finalize();

  static Tag Compute(std::span<const uint8_t> key, std::span<const uint8_t> msg);

 private:
  void ProcessBlock(const uint8_t* block, uint32_t hibit);

  uint32_t r_[5];
  uint32_t h_[5];
  uint32_t pad_[4];
  std::array<uint8_t, 16> buffer_;
  size_t buffer_len_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_POLY1305_H_
