#include "src/crypto/rng.h"

#include <algorithm>
#include <cstring>
#include <random>

namespace snoopy {

Rng::Rng() {
  std::random_device rd;
  for (size_t i = 0; i < key_.size(); i += 4) {
    const uint32_t v = rd();
    std::memcpy(key_.data() + i, &v, 4);
  }
}

Rng::Rng(uint64_t seed) {
  for (size_t i = 0; i < key_.size(); i += 8) {
    // Spread the seed across the key with distinct mixing constants.
    const uint64_t v = seed * 0x9e3779b97f4a7c15ULL + (i + 1) * 0xbf58476d1ce4e5b9ULL;
    std::memcpy(key_.data() + i, &v, 8);
  }
}

void Rng::Refill() {
  static constexpr uint8_t kNonce[ChaCha20::kNonceBytes] = {'s', 'n', 'o', 'o', 'p', 'y',
                                                            'r', 'n', 'g', 0,   0,   0};
  ChaCha20 cipher(std::span<const uint8_t>(key_.data(), key_.size()),
                  std::span<const uint8_t>(kNonce, sizeof(kNonce)),
                  static_cast<uint32_t>(block_counter_));
  cipher.KeystreamBlock(static_cast<uint32_t>(block_counter_), pool_);
  ++block_counter_;
  pool_used_ = 0;
}

void Rng::Fill(uint8_t* out, size_t len) {
  size_t i = 0;
  while (i < len) {
    if (pool_used_ == pool_.size()) {
      Refill();
    }
    const size_t take = std::min(len - i, pool_.size() - pool_used_);
    std::memcpy(out + i, pool_.data() + pool_used_, take);
    pool_used_ += take;
    i += take;
  }
}

uint64_t Rng::Next64() {
  uint64_t v;
  Fill(reinterpret_cast<uint8_t*>(&v), sizeof(v));
  return v;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % bound;
  uint64_t v;
  do {
    v = Next64();
  } while (v >= limit);
  return v % bound;
}

SipKey Rng::NextSipKey() {
  SipKey k;
  Fill(k.data(), k.size());
  return k;
}

std::array<uint8_t, 32> Rng::NextKey32() {
  std::array<uint8_t, 32> k;
  Fill(k.data(), k.size());
  return k;
}

}  // namespace snoopy
