// Lamport one-time signatures over SHA-256.
//
// The key-transparency application must publish a *signed* Merkle root (paper section
// 3.2: clients verify "the signed root of the transparency log"). Rather than pulling
// in a curve library, we implement hash-based one-time signatures -- simple enough to
// get right from scratch, unconditionally secure under SHA-256 preimage resistance,
// and one-time is exactly the usage pattern (one fresh key per published epoch, with
// each signature committing to the next public key, forming a verification chain).
//
// Key material: 2x256 random 32-byte preimages (secret), their hashes (public).
// Signature: for each message-digest bit, reveal the preimage for that bit value.

#ifndef SNOOPY_SRC_CRYPTO_LAMPORT_H_
#define SNOOPY_SRC_CRYPTO_LAMPORT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/crypto/rng.h"
#include "src/crypto/sha256.h"

namespace snoopy {

class LamportKey {
 public:
  static constexpr size_t kBits = 256;
  using PublicKey = std::array<Sha256::Digest, 2 * kBits>;
  using Signature = std::array<Sha256::Digest, kBits>;

  // Generates a fresh one-time key pair.
  explicit LamportKey(Rng& rng);

  const PublicKey& public_key() const { return public_key_; }

  // Signs (the SHA-256 digest of) the message. Calling Sign twice throws: reusing a
  // Lamport key leaks preimages for both bit values.
  Signature Sign(std::span<const uint8_t> message);

  static bool Verify(const PublicKey& pk, std::span<const uint8_t> message,
                     const Signature& sig);

 private:
  std::array<Sha256::Digest, 2 * kBits> secrets_;
  PublicKey public_key_;
  bool used_ = false;
};

// A chain of one-time keys: each signed statement embeds the next public key, so a
// verifier that trusts the genesis public key can follow the chain across epochs
// (the standard "key ladder" used by transparency logs for root rotation).
class LamportChain {
 public:
  explicit LamportChain(uint64_t seed);

  struct SignedStatement {
    std::vector<uint8_t> message;       // statement payload
    LamportKey::PublicKey next_public;  // key that will sign the next statement
    LamportKey::Signature signature;    // over message || next_public
  };

  const LamportKey::PublicKey& genesis_public() const { return genesis_public_; }

  SignedStatement Sign(std::span<const uint8_t> message);

  // Verifies a full chain of statements starting from the genesis key.
  static bool VerifyChain(const LamportKey::PublicKey& genesis,
                          const std::vector<SignedStatement>& chain);

 private:
  static std::vector<uint8_t> Encode(const SignedStatement& statement);

  Rng rng_;
  std::unique_ptr<LamportKey> current_;
  std::unique_ptr<LamportKey> next_;
  LamportKey::PublicKey genesis_public_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_LAMPORT_H_
