// ChaCha20-based CSPRNG.
//
// Used wherever the protocol needs fresh secret randomness: per-batch hash keys,
// Path ORAM leaf assignments, dummy-request identifiers. Deterministic seeding is
// supported for reproducible tests and simulations.

#ifndef SNOOPY_SRC_CRYPTO_RNG_H_
#define SNOOPY_SRC_CRYPTO_RNG_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

#include "src/crypto/chacha20.h"
#include "src/crypto/siphash.h"

namespace snoopy {

class Rng {
 public:
  // Seeded from the OS entropy source.
  Rng();
  // Deterministic stream for tests / simulations.
  explicit Rng(uint64_t seed);

  void Fill(uint8_t* out, size_t len);
  void Fill(std::span<uint8_t> out) { Fill(out.data(), out.size()); }

  uint64_t Next64();
  // Uniform in [0, bound) via rejection sampling; bound must be nonzero.
  uint64_t Uniform(uint64_t bound);

  SipKey NextSipKey();
  std::array<uint8_t, 32> NextKey32();

  // UniformRandomBitGenerator interface, so Rng works with <random> and std::shuffle.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return Next64(); }

 private:
  void Refill();

  std::array<uint8_t, 32> key_{};
  uint64_t block_counter_ = 0;
  std::array<uint8_t, ChaCha20::kBlockBytes> pool_{};
  size_t pool_used_ = ChaCha20::kBlockBytes;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_RNG_H_
