#include "src/crypto/hmac.h"

#include <cstring>

#include "src/obl/secret.h"

namespace snoopy {

Mac256 HmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message) {
  std::array<uint8_t, Sha256::kBlockBytes> k_block{};
  if (key.size() > Sha256::kBlockBytes) {
    const Sha256::Digest kd = Sha256::Hash(key);
    std::memcpy(k_block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<uint8_t, Sha256::kBlockBytes> ipad;
  std::array<uint8_t, Sha256::kBlockBytes> opad;
  for (size_t i = 0; i < Sha256::kBlockBytes; ++i) {
    ipad[i] = static_cast<uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(ipad.data(), ipad.size());
  inner.Update(message.data(), message.size());
  const Sha256::Digest inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(opad.data(), opad.size());
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

Mac256 DeriveKey(std::span<const uint8_t> root, std::string_view label, uint64_t counter) {
  std::array<uint8_t, 64> msg{};
  const size_t label_len = label.size() > 48 ? 48 : label.size();
  std::memcpy(msg.data(), label.data(), label_len);
  for (int i = 0; i < 8; ++i) {
    msg[48 + static_cast<size_t>(i)] = static_cast<uint8_t>(counter >> (8 * i));
  }
  msg[56] = static_cast<uint8_t>(label_len);
  return HmacSha256(root, std::span<const uint8_t>(msg.data(), msg.size()));
}

// SNOOPY_OBLIVIOUS_BEGIN(hmac_verify)
// ct-public: mac Mac256

bool VerifyHmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message,
                      std::span<const uint8_t> mac) {
  if (mac.size() != sizeof(Mac256)) {
    return false;
  }
  const Mac256 expected = HmacSha256(key, message);
  return SecretEqualBytes(expected.data(), mac.data(), expected.size())
      .Declassify("hmac.verify");
}

// SNOOPY_OBLIVIOUS_END(hmac_verify)

}  // namespace snoopy
