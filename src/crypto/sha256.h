// SHA-256 (FIPS 180-4). Incremental interface plus one-shot helper.
//
// Used for: integrity digests of out-of-enclave pages (paper section 7), Merkle tree
// hashing in the key-transparency application, and as the compression function behind
// HMAC-SHA256.

#ifndef SNOOPY_SRC_CRYPTO_SHA256_H_
#define SNOOPY_SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace snoopy {

class Sha256 {
 public:
  static constexpr size_t kDigestBytes = 32;
  static constexpr size_t kBlockBytes = 64;
  using Digest = std::array<uint8_t, kDigestBytes>;

  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::span<const uint8_t> data) { Update(data.data(), data.size()); }
  Digest Finalize();

  static Digest Hash(const void* data, size_t len);
  static Digest Hash(std::span<const uint8_t> data) { return Hash(data.data(), data.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockBytes> buffer_;
  uint64_t total_len_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_SHA256_H_
