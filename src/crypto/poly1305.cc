#include "src/crypto/poly1305.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace snoopy {

namespace {

inline uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Poly1305::Poly1305(std::span<const uint8_t> key) {
  assert(key.size() == kKeyBytes);
  // r with clamping, split into 26-bit limbs (poly1305-donna layout).
  r_[0] = Load32Le(key.data() + 0) & 0x3ffffff;
  r_[1] = (Load32Le(key.data() + 3) >> 2) & 0x3ffff03;
  r_[2] = (Load32Le(key.data() + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (Load32Le(key.data() + 9) >> 6) & 0x3f03fff;
  r_[4] = (Load32Le(key.data() + 12) >> 8) & 0x00fffff;
  h_[0] = h_[1] = h_[2] = h_[3] = h_[4] = 0;
  for (int i = 0; i < 4; ++i) {
    pad_[i] = Load32Le(key.data() + 16 + 4 * i);
  }
}

void Poly1305::ProcessBlock(const uint8_t* block, uint32_t hibit) {
  const uint32_t r0 = r_[0];
  const uint32_t r1 = r_[1];
  const uint32_t r2 = r_[2];
  const uint32_t r3 = r_[3];
  const uint32_t r4 = r_[4];

  const uint32_t s1 = r1 * 5;
  const uint32_t s2 = r2 * 5;
  const uint32_t s3 = r3 * 5;
  const uint32_t s4 = r4 * 5;

  uint32_t h0 = h_[0];
  uint32_t h1 = h_[1];
  uint32_t h2 = h_[2];
  uint32_t h3 = h_[3];
  uint32_t h4 = h_[4];

  // h += m
  h0 += Load32Le(block + 0) & 0x3ffffff;
  h1 += (Load32Le(block + 3) >> 2) & 0x3ffffff;
  h2 += (Load32Le(block + 6) >> 4) & 0x3ffffff;
  h3 += (Load32Le(block + 9) >> 6) & 0x3ffffff;
  h4 += (Load32Le(block + 12) >> 8) | (hibit << 24);

  // h *= r mod 2^130 - 5
  const uint64_t d0 = static_cast<uint64_t>(h0) * r0 + static_cast<uint64_t>(h1) * s4 +
                      static_cast<uint64_t>(h2) * s3 + static_cast<uint64_t>(h3) * s2 +
                      static_cast<uint64_t>(h4) * s1;
  uint64_t d1 = static_cast<uint64_t>(h0) * r1 + static_cast<uint64_t>(h1) * r0 +
                static_cast<uint64_t>(h2) * s4 + static_cast<uint64_t>(h3) * s3 +
                static_cast<uint64_t>(h4) * s2;
  uint64_t d2 = static_cast<uint64_t>(h0) * r2 + static_cast<uint64_t>(h1) * r1 +
                static_cast<uint64_t>(h2) * r0 + static_cast<uint64_t>(h3) * s4 +
                static_cast<uint64_t>(h4) * s3;
  uint64_t d3 = static_cast<uint64_t>(h0) * r3 + static_cast<uint64_t>(h1) * r2 +
                static_cast<uint64_t>(h2) * r1 + static_cast<uint64_t>(h3) * r0 +
                static_cast<uint64_t>(h4) * s4;
  uint64_t d4 = static_cast<uint64_t>(h0) * r4 + static_cast<uint64_t>(h1) * r3 +
                static_cast<uint64_t>(h2) * r2 + static_cast<uint64_t>(h3) * r1 +
                static_cast<uint64_t>(h4) * r0;

  // Partial reduction.
  uint64_t c = d0 >> 26;
  h0 = static_cast<uint32_t>(d0) & 0x3ffffff;
  d1 += c;
  c = d1 >> 26;
  h1 = static_cast<uint32_t>(d1) & 0x3ffffff;
  d2 += c;
  c = d2 >> 26;
  h2 = static_cast<uint32_t>(d2) & 0x3ffffff;
  d3 += c;
  c = d3 >> 26;
  h3 = static_cast<uint32_t>(d3) & 0x3ffffff;
  d4 += c;
  c = d4 >> 26;
  h4 = static_cast<uint32_t>(d4) & 0x3ffffff;
  h0 += static_cast<uint32_t>(c) * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += static_cast<uint32_t>(c);

  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void Poly1305::Update(const uint8_t* data, size_t len) {
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 16) {
      ProcessBlock(data, 1);
      data += 16;
      len -= 16;
      continue;
    }
    const size_t take = std::min(len, size_t{16} - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 16) {
      ProcessBlock(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
}

Poly1305::Tag Poly1305::Finalize() {
  if (buffer_len_ > 0) {
    buffer_[buffer_len_] = 1;
    for (size_t i = buffer_len_ + 1; i < 16; ++i) {
      buffer_[i] = 0;
    }
    ProcessBlock(buffer_.data(), 0);
    buffer_len_ = 0;
  }

  uint32_t h0 = h_[0];
  uint32_t h1 = h_[1];
  uint32_t h2 = h_[2];
  uint32_t h3 = h_[3];
  uint32_t h4 = h_[4];

  // Full carry.
  uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p (i.e., h - (2^130 - 5)) and select it if non-negative.
  uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  const uint32_t g4 = h4 + c - (1u << 26);

  const uint32_t mask = (g4 >> 31) - 1;  // all-ones if g4 >= 0 (h >= p)
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // h = h % 2^128, serialized little-endian.
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // Add pad with carry.
  uint64_t f = static_cast<uint64_t>(h0) + pad_[0];
  h0 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h1) + pad_[1] + (f >> 32);
  h1 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h2) + pad_[2] + (f >> 32);
  h2 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h3) + pad_[3] + (f >> 32);
  h3 = static_cast<uint32_t>(f);

  Tag tag;
  const uint32_t words[4] = {h0, h1, h2, h3};
  for (int i = 0; i < 4; ++i) {
    tag[4 * i] = static_cast<uint8_t>(words[i]);
    tag[4 * i + 1] = static_cast<uint8_t>(words[i] >> 8);
    tag[4 * i + 2] = static_cast<uint8_t>(words[i] >> 16);
    tag[4 * i + 3] = static_cast<uint8_t>(words[i] >> 24);
  }
  return tag;
}

Poly1305::Tag Poly1305::Compute(std::span<const uint8_t> key, std::span<const uint8_t> msg) {
  Poly1305 p(key);
  p.Update(msg.data(), msg.size());
  return p.Finalize();
}

}  // namespace snoopy
