// SipHash-2-4 (Aumasson & Bernstein): a fast keyed PRF over short inputs.
//
// Snoopy assigns objects to subORAMs with "a keyed hash function where the attacker
// does not know the key" (paper section 4.1) so that an adversary cannot craft request
// sets that overflow a batch; the subORAM's per-batch hash table likewise re-keys every
// batch (section 5). SipHash is the standard choice for exactly this keyed-bucketing
// role.

#ifndef SNOOPY_SRC_CRYPTO_SIPHASH_H_
#define SNOOPY_SRC_CRYPTO_SIPHASH_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

#include "src/obl/secret.h"

namespace snoopy {

using SipKey = std::array<uint8_t, 16>;

uint64_t SipHash24(const SipKey& key, std::span<const uint8_t> data);

// Convenience for hashing a single 64-bit object identifier.
uint64_t SipHash24(const SipKey& key, uint64_t value);

// Taint-preserving adapter: a keyed hash of a secret stays secret. SipHash itself is
// ARX (add-rotate-xor) with a fixed round structure, so it is branchless and
// index-free by construction; this overload is part of the Secret<T> trusted base.
inline SecretU64 SipHash24(const SipKey& key, SecretU64 value) {
  return SecretU64(SipHash24(key, value.SecretValueForPrimitive()));
}

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_SIPHASH_H_
