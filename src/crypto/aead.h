// ChaCha20-Poly1305 AEAD (RFC 8439).
//
// All Snoopy wire traffic -- client to load balancer, load balancer to subORAM -- is
// protected with this AEAD; nonces are per-channel counters so replays fail to
// authenticate (paper section 3.1).

#ifndef SNOOPY_SRC_CRYPTO_AEAD_H_
#define SNOOPY_SRC_CRYPTO_AEAD_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace snoopy {

class Aead {
 public:
  static constexpr size_t kKeyBytes = 32;
  static constexpr size_t kNonceBytes = 12;
  static constexpr size_t kTagBytes = 16;

  using Key = std::array<uint8_t, kKeyBytes>;
  using Nonce = std::array<uint8_t, kNonceBytes>;

  explicit Aead(const Key& key) : key_(key) {}

  // Returns ciphertext || tag (plaintext.size() + kTagBytes bytes).
  std::vector<uint8_t> Seal(const Nonce& nonce, std::span<const uint8_t> aad,
                            std::span<const uint8_t> plaintext) const;

  // Verifies and decrypts ciphertext || tag. Returns false on authentication failure
  // (in which case `plaintext_out` is left empty).
  bool Open(const Nonce& nonce, std::span<const uint8_t> aad, std::span<const uint8_t> sealed,
            std::vector<uint8_t>& plaintext_out) const;

  // Helper: little-endian counter nonce.
  static Nonce CounterNonce(uint64_t counter, uint32_t channel = 0);

 private:
  Key key_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_CRYPTO_AEAD_H_
