#include "src/crypto/aead.h"

#include <cstring>

#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"

namespace snoopy {

namespace {

// Computes the RFC 8439 Poly1305 tag over aad || pad || ct || pad || len(aad) || len(ct).
Poly1305::Tag ComputeTag(const Aead::Key& key, const Aead::Nonce& nonce,
                         std::span<const uint8_t> aad, std::span<const uint8_t> ct) {
  // One-time Poly1305 key: first 32 bytes of the ChaCha20 keystream with counter 0.
  ChaCha20 cipher(std::span<const uint8_t>(key.data(), key.size()),
                  std::span<const uint8_t>(nonce.data(), nonce.size()), 0);
  std::array<uint8_t, ChaCha20::kBlockBytes> block;
  cipher.KeystreamBlock(0, block);

  Poly1305 mac(std::span<const uint8_t>(block.data(), 32));
  static constexpr uint8_t kZeros[16] = {};
  mac.Update(aad.data(), aad.size());
  if (aad.size() % 16 != 0) {
    mac.Update(kZeros, 16 - aad.size() % 16);
  }
  mac.Update(ct.data(), ct.size());
  if (ct.size() % 16 != 0) {
    mac.Update(kZeros, 16 - ct.size() % 16);
  }
  uint8_t lens[16];
  const uint64_t aad_len = aad.size();
  const uint64_t ct_len = ct.size();
  for (int i = 0; i < 8; ++i) {
    lens[i] = static_cast<uint8_t>(aad_len >> (8 * i));
    lens[8 + i] = static_cast<uint8_t>(ct_len >> (8 * i));
  }
  mac.Update(lens, 16);
  return mac.Finalize();
}

}  // namespace

std::vector<uint8_t> Aead::Seal(const Nonce& nonce, std::span<const uint8_t> aad,
                                std::span<const uint8_t> plaintext) const {
  std::vector<uint8_t> out(plaintext.size() + kTagBytes);
  std::memcpy(out.data(), plaintext.data(), plaintext.size());
  ChaCha20 cipher(std::span<const uint8_t>(key_.data(), key_.size()),
                  std::span<const uint8_t>(nonce.data(), nonce.size()), 1);
  cipher.Crypt(out.data(), plaintext.size());
  const Poly1305::Tag tag =
      ComputeTag(key_, nonce, aad, std::span<const uint8_t>(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kTagBytes);
  return out;
}

// SNOOPY_OBLIVIOUS_BEGIN(aead_open)
// ct-public: sealed kTagBytes ct_len

bool Aead::Open(const Nonce& nonce, std::span<const uint8_t> aad, std::span<const uint8_t> sealed,
                std::vector<uint8_t>& plaintext_out) const {
  plaintext_out.clear();
  if (sealed.size() < kTagBytes) {
    return false;
  }
  const size_t ct_len = sealed.size() - kTagBytes;
  const Poly1305::Tag expected =
      ComputeTag(key_, nonce, aad, std::span<const uint8_t>(sealed.data(), ct_len));
  // The comparison runs over the full tag regardless of where bytes differ; only the
  // accept/reject verdict leaves the taint domain (that bit is the function's output).
  const SecretBool tag_ok =
      SecretEqualBytes(expected.data(), sealed.data() + ct_len, kTagBytes);
  if (!tag_ok.Declassify("aead.tag_ok")) {
    return false;
  }
  plaintext_out.assign(sealed.begin(), sealed.begin() + static_cast<ptrdiff_t>(ct_len));
  ChaCha20 cipher(std::span<const uint8_t>(key_.data(), key_.size()),
                  std::span<const uint8_t>(nonce.data(), nonce.size()), 1);
  cipher.Crypt(plaintext_out.data(), ct_len);
  return true;
}

// SNOOPY_OBLIVIOUS_END(aead_open)

Aead::Nonce Aead::CounterNonce(uint64_t counter, uint32_t channel) {
  Nonce n{};
  for (int i = 0; i < 8; ++i) {
    n[static_cast<size_t>(i)] = static_cast<uint8_t>(counter >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    n[8 + static_cast<size_t>(i)] = static_cast<uint8_t>(channel >> (8 * i));
  }
  return n;
}

}  // namespace snoopy
