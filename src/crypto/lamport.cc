#include "src/crypto/lamport.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

LamportKey::LamportKey(Rng& rng) {
  for (size_t i = 0; i < secrets_.size(); ++i) {
    rng.Fill(secrets_[i].data(), secrets_[i].size());
    public_key_[i] = Sha256::Hash(secrets_[i].data(), secrets_[i].size());
  }
}

LamportKey::Signature LamportKey::Sign(std::span<const uint8_t> message) {
  if (used_) {
    throw std::logic_error("Lamport key reuse would leak the secret key");
  }
  used_ = true;
  const Sha256::Digest digest = Sha256::Hash(message.data(), message.size());
  Signature sig;
  for (size_t bit = 0; bit < kBits; ++bit) {
    const size_t b = (digest[bit / 8] >> (bit % 8)) & 1;
    sig[bit] = secrets_[2 * bit + b];
  }
  return sig;
}

bool LamportKey::Verify(const PublicKey& pk, std::span<const uint8_t> message,
                        const Signature& sig) {
  const Sha256::Digest digest = Sha256::Hash(message.data(), message.size());
  for (size_t bit = 0; bit < kBits; ++bit) {
    const size_t b = (digest[bit / 8] >> (bit % 8)) & 1;
    if (Sha256::Hash(sig[bit].data(), sig[bit].size()) != pk[2 * bit + b]) {
      return false;
    }
  }
  return true;
}

LamportChain::LamportChain(uint64_t seed) : rng_(seed) {
  current_ = std::make_unique<LamportKey>(rng_);
  next_ = std::make_unique<LamportKey>(rng_);
  genesis_public_ = current_->public_key();
}

std::vector<uint8_t> LamportChain::Encode(const SignedStatement& statement) {
  std::vector<uint8_t> buf;
  buf.reserve(statement.message.size() + sizeof(statement.next_public));
  buf.insert(buf.end(), statement.message.begin(), statement.message.end());
  for (const Sha256::Digest& d : statement.next_public) {
    buf.insert(buf.end(), d.begin(), d.end());
  }
  return buf;
}

LamportChain::SignedStatement LamportChain::Sign(std::span<const uint8_t> message) {
  SignedStatement statement;
  statement.message.assign(message.begin(), message.end());
  statement.next_public = next_->public_key();
  statement.signature = current_->Sign(Encode(statement));
  current_ = std::move(next_);
  next_ = std::make_unique<LamportKey>(rng_);
  return statement;
}

bool LamportChain::VerifyChain(const LamportKey::PublicKey& genesis,
                               const std::vector<SignedStatement>& chain) {
  const LamportKey::PublicKey* pk = &genesis;
  for (const SignedStatement& statement : chain) {
    if (!LamportKey::Verify(*pk, Encode(statement), statement.signature)) {
      return false;
    }
    pk = &statement.next_public;
  }
  return true;
}

}  // namespace snoopy
