// Redis-style plaintext sharded key-value store (paper section 8.1): the insecure
// upper bound Snoopy is compared against. Clients hash keys directly to shards; the
// server sees every access pattern -- that visibility is exactly what it trades for
// speed ("Attempt #1: scalable but not secure", section 3).

#ifndef SNOOPY_SRC_BASELINE_PLAINTEXT_STORE_H_
#define SNOOPY_SRC_BASELINE_PLAINTEXT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace snoopy {

class PlaintextStore {
 public:
  PlaintextStore(uint32_t num_shards, size_t value_size);

  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  std::vector<uint8_t> Read(uint64_t key) const;
  void Write(uint64_t key, const std::vector<uint8_t>& value);

  uint32_t ShardOf(uint64_t key) const;
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t accesses() const { return accesses_; }
  // Per-shard access counts: the access-pattern leakage an adversary observes.
  const std::vector<uint64_t>& shard_accesses() const { return shard_accesses_; }

 private:
  size_t value_size_;
  std::vector<std::unordered_map<uint64_t, std::vector<uint8_t>>> shards_;
  mutable uint64_t accesses_ = 0;
  mutable std::vector<uint64_t> shard_accesses_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_BASELINE_PLAINTEXT_STORE_H_
