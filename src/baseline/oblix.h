// Oblix-style baseline (paper section 8.1): a latency-optimized, strictly sequential
// enclave ORAM built on doubly-oblivious Path ORAM with a recursively stored position
// map. The paper measures its DORAM at ~1.1K sequential requests/second with ~1.1 ms
// latency on 2M 160-byte objects -- excellent latency, but it "cannot securely scale
// across machines": one instance is the throughput ceiling.
//
// Functionally this wraps RecursivePathOram with a key -> address index; performance
// numbers for the figures come from the calibrated cost model, parameterized by the
// per-access path statistics this implementation reports.

#ifndef SNOOPY_SRC_BASELINE_OBLIX_H_
#define SNOOPY_SRC_BASELINE_OBLIX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/oram/position_map.h"

namespace snoopy {

class OblixStore {
 public:
  OblixStore(uint64_t capacity, size_t value_size, uint64_t seed);

  // Loads objects (keys distinct, at most `capacity` of them).
  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  // Sequential oblivious access. Returns the previous value; writes install new data.
  std::vector<uint8_t> Access(uint64_t key, const std::vector<uint8_t>* new_data);
  std::vector<uint8_t> Read(uint64_t key) { return Access(key, nullptr); }
  void Write(uint64_t key, const std::vector<uint8_t>& data) { Access(key, &data); }

  uint64_t accesses() const { return accesses_; }
  uint32_t recursion_depth() const { return oram_.recursion_depth(); }
  uint64_t blocks_moved() const { return oram_.blocks_moved(); }

 private:
  size_t value_size_;
  RecursivePathOram oram_;
  // Key -> ORAM address. In Oblix proper this is an oblivious sorted multimap; keeping
  // it as an in-enclave index preserves functionality, and its oblivious-access cost
  // is part of the cost model's per-access constant.
  std::map<uint64_t, uint64_t> index_;
  uint64_t next_addr_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_BASELINE_OBLIX_H_
