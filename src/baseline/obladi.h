// Obladi-style baseline (Crooks et al., OSDI'18; paper section 8.1): a *trusted proxy*
// that batches client requests (default batch size 500, the paper's configuration),
// deduplicates them, executes the distinct requests against a Ring ORAM at the storage
// server, and fans responses back out -- delayed visibility within a batch.
//
// The essential property for the scalability comparison: everything funnels through
// the one proxy, so adding machines cannot raise throughput ("Obladi ... cannot scale
// beyond a proxy and server machine"). The proxy here is plain code, not oblivious --
// exactly Obladi's trust model (Table 8: no hardware enclave, trusted proxy).

#ifndef SNOOPY_SRC_BASELINE_OBLADI_H_
#define SNOOPY_SRC_BASELINE_OBLADI_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/oram/ring_oram.h"

namespace snoopy {

struct ObladiConfig {
  uint64_t capacity = 0;
  size_t value_size = 160;
  uint32_t batch_size = 500;
};

class ObladiProxy {
 public:
  ObladiProxy(const ObladiConfig& config, uint64_t seed);

  void Initialize(const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects);

  struct Request {
    uint64_t client_seq = 0;
    uint64_t key = 0;
    bool is_write = false;
    std::vector<uint8_t> value;
  };
  struct Response {
    uint64_t client_seq = 0;
    uint64_t key = 0;
    std::vector<uint8_t> value;
  };

  void Submit(const Request& request);
  // Executes pending requests as full batches (plus a final partial batch if `flush`).
  // Reads observe the state at batch start; writes apply last-write-wins at batch end.
  std::vector<Response> ExecuteBatches(bool flush = true);

  uint64_t batches_executed() const { return batches_; }
  uint64_t oram_accesses() const { return oram_.accesses(); }
  const RingOram& oram() const { return oram_; }

 private:
  std::vector<Response> ExecuteOne(std::vector<Request>&& batch);

  ObladiConfig config_;
  RingOram oram_;
  std::map<uint64_t, uint64_t> index_;  // key -> ORAM address (proxy metadata)
  uint64_t next_addr_ = 0;
  std::vector<Request> pending_;
  uint64_t batches_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_BASELINE_OBLADI_H_
