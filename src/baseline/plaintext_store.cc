// SNOOPY_LINT_EXEMPT: deliberately leaky reference store; exists so the leakage
// tests have a positive control (see tools/ct_manifest.json).

#include "src/baseline/plaintext_store.h"

#include <stdexcept>

namespace snoopy {

PlaintextStore::PlaintextStore(uint32_t num_shards, size_t value_size)
    : value_size_(value_size), shards_(num_shards), shard_accesses_(num_shards, 0) {
  if (num_shards == 0) {
    throw std::invalid_argument("plaintext store needs at least one shard");
  }
}

uint32_t PlaintextStore::ShardOf(uint64_t key) const {
  // Plain multiplicative hash: the mapping is public (that is the point).
  return static_cast<uint32_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) % num_shards();
}

void PlaintextStore::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& [key, value] : objects) {
    std::vector<uint8_t> padded = value;
    padded.resize(value_size_, 0);
    shards_[ShardOf(key)][key] = std::move(padded);
  }
}

std::vector<uint8_t> PlaintextStore::Read(uint64_t key) const {
  const uint32_t shard = ShardOf(key);
  ++accesses_;
  ++shard_accesses_[shard];
  const auto it = shards_[shard].find(key);
  return it == shards_[shard].end() ? std::vector<uint8_t>(value_size_, 0) : it->second;
}

void PlaintextStore::Write(uint64_t key, const std::vector<uint8_t>& value) {
  const uint32_t shard = ShardOf(key);
  ++accesses_;
  ++shard_accesses_[shard];
  std::vector<uint8_t> padded = value;
  padded.resize(value_size_, 0);
  shards_[shard][key] = std::move(padded);
}

}  // namespace snoopy
