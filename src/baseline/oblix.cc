// SNOOPY_LINT_EXEMPT: comparison baseline; models another system's leakage profile and
// is intentionally outside the constant-time discipline (see tools/ct_manifest.json).

#include "src/baseline/oblix.h"

#include <stdexcept>

namespace snoopy {

namespace {

RecursivePathOramConfig OramConfig(uint64_t capacity, size_t value_size) {
  RecursivePathOramConfig cfg;
  cfg.num_blocks = capacity;
  cfg.block_size = value_size;
  return cfg;
}

}  // namespace

OblixStore::OblixStore(uint64_t capacity, size_t value_size, uint64_t seed)
    : value_size_(value_size), oram_(OramConfig(capacity, value_size), seed) {}

void OblixStore::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& [key, value] : objects) {
    if (index_.count(key) != 0) {
      throw std::invalid_argument("duplicate key at Oblix initialization");
    }
    if (next_addr_ >= oram_.num_blocks()) {
      throw std::invalid_argument("Oblix store over capacity");
    }
    const uint64_t addr = next_addr_++;
    index_[key] = addr;
    std::vector<uint8_t> padded = value;
    padded.resize(value_size_, 0);
    oram_.Write(addr, padded);
  }
}

std::vector<uint8_t> OblixStore::Access(uint64_t key, const std::vector<uint8_t>* new_data) {
  ++accesses_;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    // Unknown key: perform a dummy access so the pattern stays one-path-per-request,
    // then return null (matches the subORAM's absent-key semantics).
    (void)oram_.Read(0);
    return std::vector<uint8_t>(value_size_, 0);
  }
  if (new_data != nullptr) {
    std::vector<uint8_t> padded = *new_data;
    padded.resize(value_size_, 0);
    return oram_.Access(it->second, &padded);
  }
  return oram_.Access(it->second, nullptr);
}

}  // namespace snoopy
