// SNOOPY_LINT_EXEMPT: comparison baseline; models another system's leakage profile and
// is intentionally outside the constant-time discipline (see tools/ct_manifest.json).

#include "src/baseline/oblix_backend.h"

#include <algorithm>
#include <cstring>

namespace snoopy {

void OblixSubOramBackend::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  store_ = std::make_unique<OblixStore>(capacity_ > objects.size() ? capacity_
                                                                   : objects.size() + 1,
                                        value_size_, seed_);
  store_->Initialize(objects);
  objects_ = objects.size();
}

RequestBatch OblixSubOramBackend::ProcessBatch(RequestBatch&& batch) {
  // Batch keys are distinct (Definition 2), so sequential accesses cannot interact
  // within the batch and any order implements the reads-see-pre-state contract.
  // Dummy requests (reserved keyspace) and absent keys fall through to OblixStore's
  // dummy-access path, keeping one ORAM access per slot regardless of content.
  RequestBatch out(batch.value_size());
  for (size_t i = 0; i < batch.size(); ++i) {
    RequestHeader h = batch.Header(i);
    std::vector<uint8_t> response;
    const bool is_write = h.op == kOpWrite && h.granted != 0;
    if (is_write) {
      const std::vector<uint8_t> payload(batch.Value(i), batch.Value(i) + value_size_);
      response = store_->Access(h.key, &payload);
    } else {
      response = store_->Access(h.key, nullptr);
    }
    if (h.granted == 0 && h.op == kOpRead) {
      std::fill(response.begin(), response.end(), 0);
    }
    h.resp = 1;
    out.Append(h, response);
  }
  return out;
}

}  // namespace snoopy
