// SNOOPY_LINT_EXEMPT: comparison baseline; models another system's leakage profile and
// is intentionally outside the constant-time discipline (see tools/ct_manifest.json).

#include "src/baseline/obladi.h"

#include <stdexcept>

namespace snoopy {

namespace {

RingOramConfig OramConfig(const ObladiConfig& config) {
  RingOramConfig cfg;
  cfg.num_blocks = config.capacity;
  cfg.block_size = config.value_size;
  return cfg;
}

}  // namespace

ObladiProxy::ObladiProxy(const ObladiConfig& config, uint64_t seed)
    : config_(config), oram_(OramConfig(config), seed) {}

void ObladiProxy::Initialize(
    const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) {
  for (const auto& [key, value] : objects) {
    if (index_.count(key) != 0) {
      throw std::invalid_argument("duplicate key at Obladi initialization");
    }
    if (next_addr_ >= oram_.num_blocks()) {
      throw std::invalid_argument("Obladi store over capacity");
    }
    const uint64_t addr = next_addr_++;
    index_[key] = addr;
    std::vector<uint8_t> padded = value;
    padded.resize(config_.value_size, 0);
    oram_.Write(addr, padded);
  }
}

void ObladiProxy::Submit(const Request& request) { pending_.push_back(request); }

std::vector<ObladiProxy::Response> ObladiProxy::ExecuteOne(std::vector<Request>&& batch) {
  ++batches_;
  // Deduplicate: one ORAM read per distinct key; the last write per key (by arrival)
  // is applied at batch end -- Obladi's delayed visibility.
  std::map<uint64_t, std::vector<uint8_t>> reads;      // key -> value at batch start
  std::map<uint64_t, std::vector<uint8_t>> last_write;  // key -> value to install
  for (const Request& req : batch) {
    if (reads.count(req.key) == 0) {
      const auto it = index_.find(req.key);
      reads[req.key] = it == index_.end()
                           ? std::vector<uint8_t>(config_.value_size, 0)
                           : oram_.Read(it->second);
    }
    if (req.is_write) {
      std::vector<uint8_t> padded = req.value;
      padded.resize(config_.value_size, 0);
      last_write[req.key] = std::move(padded);
    }
  }
  for (const auto& [key, value] : last_write) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      oram_.Write(it->second, value);
    }
  }
  std::vector<Response> responses;
  responses.reserve(batch.size());
  for (const Request& req : batch) {
    responses.push_back(Response{req.client_seq, req.key, reads[req.key]});
  }
  return responses;
}

std::vector<ObladiProxy::Response> ObladiProxy::ExecuteBatches(bool flush) {
  std::vector<Response> all;
  size_t i = 0;
  while (pending_.size() - i >= config_.batch_size ||
         (flush && pending_.size() - i > 0)) {
    const size_t take = std::min<size_t>(config_.batch_size, pending_.size() - i);
    std::vector<Request> batch(pending_.begin() + static_cast<ptrdiff_t>(i),
                               pending_.begin() + static_cast<ptrdiff_t>(i + take));
    i += take;
    std::vector<Response> r = ExecuteOne(std::move(batch));
    all.insert(all.end(), r.begin(), r.end());
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(i));
  return all;
}

}  // namespace snoopy
