// Oblix as a Snoopy subORAM backend (paper Figure 10): the load balancer's batching
// and partitioning wrapped around a latency-optimized tree ORAM. Batches execute as
// sequential doubly-oblivious Path ORAM accesses -- correct but throughput-poor, which
// is exactly the comparison the paper draws against the purpose-built linear-scan
// subORAM.

#ifndef SNOOPY_SRC_BASELINE_OBLIX_BACKEND_H_
#define SNOOPY_SRC_BASELINE_OBLIX_BACKEND_H_

#include <memory>

#include "src/baseline/oblix.h"
#include "src/core/suboram_backend.h"

namespace snoopy {

class OblixSubOramBackend final : public SubOramBackend {
 public:
  OblixSubOramBackend(uint64_t capacity, size_t value_size, uint64_t seed)
      : value_size_(value_size), capacity_(capacity), seed_(seed) {}

  void Initialize(
      const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& objects) override;

  RequestBatch ProcessBatch(RequestBatch&& batch) override;

  size_t num_objects() const override { return objects_; }

 private:
  size_t value_size_;
  uint64_t capacity_;
  uint64_t seed_;
  size_t objects_ = 0;
  std::unique_ptr<OblixStore> store_;
};

class OblixBackendFactory final : public SubOramBackendFactory {
 public:
  OblixBackendFactory(uint64_t capacity_per_shard, size_t value_size)
      : capacity_(capacity_per_shard), value_size_(value_size) {}

  std::unique_ptr<SubOramBackend> Create(uint32_t id, uint64_t seed) const override {
    (void)id;
    return std::make_unique<OblixSubOramBackend>(capacity_, value_size_, seed);
  }

 private:
  uint64_t capacity_;
  size_t value_size_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_BASELINE_OBLIX_BACKEND_H_
