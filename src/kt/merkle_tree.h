// Append-only Merkle tree for the key-transparency application (paper section 3.2 and
// Figure 9b): a CONIKS/Trillian-style log where looking up a user's key requires the
// leaf, the signed root, and a log2(n)-long inclusion proof -- hence log2(n) + 1
// oblivious accesses per lookup when the tree nodes are stored in Snoopy.

#ifndef SNOOPY_SRC_KT_MERKLE_TREE_H_
#define SNOOPY_SRC_KT_MERKLE_TREE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"

namespace snoopy {

class MerkleTree {
 public:
  using Hash = Sha256::Digest;

  // Builds a complete tree over `leaves` (padded with zero hashes to a power of two).
  explicit MerkleTree(const std::vector<Hash>& leaves);

  const Hash& root() const { return nodes_[1]; }
  uint64_t num_leaves() const { return num_leaves_; }
  uint32_t depth() const { return depth_; }

  // Sibling hashes from leaf `index` up to (excluding) the root.
  std::vector<Hash> InclusionProof(uint64_t index) const;

  // Verifies that `leaf` at `index` is included under `root`.
  static bool Verify(const Hash& leaf, uint64_t index, const std::vector<Hash>& proof,
                     const Hash& root);

  // Internal node by heap index (1 = root); exposed so the transparency log can store
  // every node as a Snoopy object.
  const Hash& Node(uint64_t heap_index) const { return nodes_[heap_index]; }
  uint64_t num_nodes() const { return nodes_.size() - 1; }

  static Hash HashLeaf(const void* data, size_t len);
  static Hash HashInner(const Hash& left, const Hash& right);

 private:
  uint64_t num_leaves_;
  uint64_t padded_leaves_;
  uint32_t depth_;
  std::vector<Hash> nodes_;  // 1-indexed heap layout; nodes_[0] unused
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_KT_MERKLE_TREE_H_
