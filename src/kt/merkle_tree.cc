#include "src/kt/merkle_tree.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

MerkleTree::Hash MerkleTree::HashLeaf(const void* data, size_t len) {
  // Domain separation between leaves and inner nodes (second-preimage hardening).
  Sha256 h;
  const uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(data, len);
  return h.Finalize();
}

MerkleTree::Hash MerkleTree::HashInner(const Hash& left, const Hash& right) {
  Sha256 h;
  const uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finalize();
}

MerkleTree::MerkleTree(const std::vector<Hash>& leaves) {
  if (leaves.empty()) {
    throw std::invalid_argument("Merkle tree needs at least one leaf");
  }
  num_leaves_ = leaves.size();
  padded_leaves_ = 1;
  depth_ = 0;
  while (padded_leaves_ < num_leaves_) {
    padded_leaves_ <<= 1;
    ++depth_;
  }
  nodes_.assign(2 * padded_leaves_, Hash{});
  for (uint64_t i = 0; i < num_leaves_; ++i) {
    nodes_[padded_leaves_ + i] = leaves[i];
  }
  for (uint64_t i = padded_leaves_ - 1; i >= 1; --i) {
    nodes_[i] = HashInner(nodes_[2 * i], nodes_[2 * i + 1]);
  }
}

std::vector<MerkleTree::Hash> MerkleTree::InclusionProof(uint64_t index) const {
  if (index >= num_leaves_) {
    throw std::out_of_range("Merkle proof index out of range");
  }
  std::vector<Hash> proof;
  uint64_t node = padded_leaves_ + index;
  while (node > 1) {
    proof.push_back(nodes_[node ^ 1]);
    node >>= 1;
  }
  return proof;
}

bool MerkleTree::Verify(const Hash& leaf, uint64_t index, const std::vector<Hash>& proof,
                        const Hash& root) {
  Hash current = leaf;
  for (const Hash& sibling : proof) {
    if ((index & 1) == 0) {
      current = HashInner(current, sibling);
    } else {
      current = HashInner(sibling, current);
    }
    index >>= 1;
  }
  return current == root;
}

}  // namespace snoopy
