// Key transparency over Snoopy (paper sections 3.2 and 8.2, Figure 9b).
//
// A transparency log maps usernames to public keys and publishes a signed Merkle root;
// clients verify inclusion proofs so the server cannot equivocate. Serving lookups
// from Snoopy hides *who is looking up whom* -- e.g. Alice fetching Bob's key does not
// reveal to the server that Alice wants to talk to Bob.
//
// Storage layout inside Snoopy (32-byte objects, as in the paper's Figure 9b):
//   object [1, node_id]  -> Merkle tree node hash (heap-indexed)
//   object [0, user_id]  -> leaf index and public-key hash of that user
// One lookup = the user record + the log2(n)-node inclusion path = log2(n) + 1
// oblivious accesses; the signed root is served directly (no ORAM access).

#ifndef SNOOPY_SRC_KT_TRANSPARENCY_LOG_H_
#define SNOOPY_SRC_KT_TRANSPARENCY_LOG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/lamport.h"
#include "src/kt/merkle_tree.h"

namespace snoopy {

struct KtLookupResult {
  bool found = false;
  bool proof_valid = false;
  MerkleTree::Hash key_hash{};          // the user's public-key digest
  uint64_t leaf_index = 0;
  uint32_t oblivious_accesses = 0;      // log2(n) + 1, the Figure 9b amplification
};

class TransparencyLog {
 public:
  // `users[i]` is user i's public key bytes. The log is served by the given Snoopy
  // topology (value size forced to 32, as in the paper).
  TransparencyLog(const std::vector<std::vector<uint8_t>>& users, uint32_t load_balancers,
                  uint32_t suborams, uint64_t seed);

  // Obliviously looks up `user_id`'s key with an inclusion proof; all ORAM accesses
  // for one lookup execute in one Snoopy epoch.
  KtLookupResult Lookup(uint64_t user_id);

  // Batched form: many lookups share the epoch (how the paper's throughput experiment
  // drives the system).
  std::vector<KtLookupResult> LookupBatch(const std::vector<uint64_t>& user_ids);

  const MerkleTree::Hash& signed_root() const { return tree_->root(); }
  // The root is published under a hash-based signature chain; clients verify the
  // statement against the genesis key they obtained out of band (section 3.2).
  const LamportChain::SignedStatement& root_statement() const { return root_statement_; }
  const LamportKey::PublicKey& genesis_public() const { return signer_genesis_; }
  static bool VerifyRootStatement(const LamportKey::PublicKey& genesis,
                                  const LamportChain::SignedStatement& statement,
                                  const MerkleTree::Hash& root);
  uint64_t num_users() const { return num_users_; }
  uint32_t accesses_per_lookup() const { return tree_->depth() + 1; }
  Snoopy& store() { return *store_; }

 private:
  static uint64_t NodeKey(uint64_t heap_index);
  static uint64_t UserKey(uint64_t user_id);

  uint64_t num_users_;
  std::unique_ptr<MerkleTree> tree_;
  std::unique_ptr<LamportChain> signer_;
  LamportKey::PublicKey signer_genesis_;
  LamportChain::SignedStatement root_statement_;
  std::unique_ptr<Snoopy> store_;
  uint64_t next_seq_ = 0;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_KT_TRANSPARENCY_LOG_H_
