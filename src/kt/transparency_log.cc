#include "src/kt/transparency_log.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

namespace snoopy {

namespace {
constexpr size_t kNodeValueSize = 32;  // one SHA-256 hash per object (paper Fig. 9b)
}  // namespace

uint64_t TransparencyLog::NodeKey(uint64_t heap_index) {
  return (uint64_t{1} << 62) | heap_index;
}

uint64_t TransparencyLog::UserKey(uint64_t user_id) { return user_id; }

TransparencyLog::TransparencyLog(const std::vector<std::vector<uint8_t>>& users,
                                 uint32_t load_balancers, uint32_t suborams, uint64_t seed) {
  num_users_ = users.size();
  std::vector<MerkleTree::Hash> leaves;
  leaves.reserve(users.size());
  for (const auto& key : users) {
    leaves.push_back(MerkleTree::HashLeaf(key.data(), key.size()));
  }
  tree_ = std::make_unique<MerkleTree>(leaves);

  SnoopyConfig cfg;
  cfg.num_load_balancers = load_balancers;
  cfg.num_suborams = suborams;
  cfg.value_size = kNodeValueSize;
  store_ = std::make_unique<Snoopy>(cfg, seed);

  // Publish the signed root (one-time-signature chain; fresh key per epoch).
  signer_ = std::make_unique<LamportChain>(seed ^ 0x5167);
  signer_genesis_ = signer_->genesis_public();
  root_statement_ = signer_->Sign(
      std::span<const uint8_t>(tree_->root().data(), tree_->root().size()));

  // Every tree node (inner nodes and leaves) becomes one 32-byte Snoopy object.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  objects.reserve(tree_->num_nodes());
  for (uint64_t node = 1; node <= tree_->num_nodes(); ++node) {
    const MerkleTree::Hash& h = tree_->Node(node);
    objects.emplace_back(NodeKey(node), std::vector<uint8_t>(h.begin(), h.end()));
  }
  store_->Initialize(objects);
}

std::vector<KtLookupResult> TransparencyLog::LookupBatch(
    const std::vector<uint64_t>& user_ids) {
  // Phase 1: submit, per lookup, the leaf node and every sibling on its path to the
  // root -- log2(n) + 1 oblivious accesses (the signed root itself is public).
  const uint64_t padded = tree_->num_nodes() / 2 + 1;  // first leaf's heap index
  struct Pending {
    uint64_t user;
    std::vector<uint64_t> node_keys;  // leaf first, then siblings bottom-up
  };
  std::vector<Pending> pending;
  uint64_t base_seq = next_seq_;
  for (const uint64_t user : user_ids) {
    Pending p;
    p.user = user;
    uint64_t node = padded + user;
    p.node_keys.push_back(NodeKey(node));
    while (node > 1) {
      p.node_keys.push_back(NodeKey(node ^ 1));
      node >>= 1;
    }
    for (const uint64_t key : p.node_keys) {
      store_->SubmitRead(/*client_id=*/p.user, next_seq_++, key);
    }
    pending.push_back(std::move(p));
  }

  std::map<uint64_t, MerkleTree::Hash> by_seq;
  for (const ClientResponse& resp : store_->RunEpoch()) {
    MerkleTree::Hash h{};
    std::memcpy(h.data(), resp.value.data(), h.size());
    by_seq[resp.client_seq] = h;
  }

  // Phase 2: verify each proof against the signed root.
  std::vector<KtLookupResult> results;
  uint64_t seq = base_seq;
  for (const Pending& p : pending) {
    KtLookupResult r;
    r.found = p.user < num_users_;
    r.leaf_index = p.user;
    r.oblivious_accesses = static_cast<uint32_t>(p.node_keys.size());
    const MerkleTree::Hash leaf = by_seq[seq++];
    std::vector<MerkleTree::Hash> proof;
    for (size_t i = 1; i < p.node_keys.size(); ++i) {
      proof.push_back(by_seq[seq++]);
    }
    r.key_hash = leaf;
    r.proof_valid = MerkleTree::Verify(leaf, p.user, proof, tree_->root());
    results.push_back(r);
  }
  return results;
}

KtLookupResult TransparencyLog::Lookup(uint64_t user_id) {
  return LookupBatch({user_id})[0];
}

bool TransparencyLog::VerifyRootStatement(const LamportKey::PublicKey& genesis,
                                          const LamportChain::SignedStatement& statement,
                                          const MerkleTree::Hash& root) {
  if (statement.message.size() != root.size() ||
      !std::equal(root.begin(), root.end(), statement.message.begin())) {
    return false;
  }
  return LamportChain::VerifyChain(genesis, {statement});
}

}  // namespace snoopy
