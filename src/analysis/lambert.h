// Branch 0 of the Lambert W function, W0(x): the inverse of w * e^w on [-1/e, inf).
//
// Snoopy's batch-size bound (paper Theorem 3) is expressed in terms of W0; we evaluate
// it with Halley's method seeded by standard asymptotic initial guesses, which
// converges to double precision in a handful of iterations for the whole domain.

#ifndef SNOOPY_SRC_ANALYSIS_LAMBERT_H_
#define SNOOPY_SRC_ANALYSIS_LAMBERT_H_

namespace snoopy {

// Returns W0(x) for x >= -1/e. For x slightly below -1/e (within numerical slop),
// returns -1. Behaviour for x < -1/e - 1e-9 is a NaN.
double LambertW0(double x);

}  // namespace snoopy

#endif  // SNOOPY_SRC_ANALYSIS_LAMBERT_H_
