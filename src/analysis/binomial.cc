#include "src/analysis/binomial.h"

#include <algorithm>
#include <cmath>

namespace snoopy {
namespace {

// lgamma(3) writes the global `signgam`, so concurrent callers race on it (the
// parallel epoch executor evaluates batch bounds from several subORAM workers
// at once). Use the reentrant form; the argument is always > 0 here so the
// sign output is irrelevant.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomialPmf(uint64_t n, double p, uint64_t k) {
  if (k > n) {
    return -1e300;
  }
  if (p <= 0.0) {
    return k == 0 ? 0.0 : -1e300;
  }
  if (p >= 1.0) {
    return k == n ? 0.0 : -1e300;
  }
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return LogGamma(dn + 1.0) - LogGamma(dk + 1.0) - LogGamma(dn - dk + 1.0) +
         dk * std::log(p) + (dn - dk) * std::log1p(-p);
}

double BinomialTailAbove(uint64_t n, double p, uint64_t k) {
  if (k >= n) {
    return 0.0;
  }
  double sum = 0.0;
  for (uint64_t j = k + 1; j <= n; ++j) {
    const double lp = LogBinomialPmf(n, p, j);
    if (lp < -745.0) {  // exp underflows to 0 below this; terms are unimodal.
      if (j > k + 1 && sum > 0.0) {
        break;
      }
      continue;
    }
    sum += std::exp(lp);
  }
  return std::min(1.0, sum);
}

double ExpectedExcess(uint64_t n, double p, uint64_t z) {
  double sum = 0.0;
  for (uint64_t j = z + 1; j <= n; ++j) {
    const double lp = LogBinomialPmf(n, p, j);
    if (lp < -745.0) {
      if (j > z + 1 && sum > 0.0) {
        break;
      }
      continue;
    }
    sum += static_cast<double>(j - z) * std::exp(lp);
  }
  return sum;
}

uint64_t OverflowBound(uint64_t n, uint64_t m, uint64_t z, uint32_t lambda) {
  if (n == 0 || m == 0) {
    return 0;
  }
  const double p = 1.0 / static_cast<double>(m);
  const double expected = static_cast<double>(m) * ExpectedExcess(n, p, z);
  const double slack =
      std::sqrt(static_cast<double>(n) * (static_cast<double>(lambda) * M_LN2) / 2.0);
  const double bound = std::ceil(expected + slack);
  return std::min<uint64_t>(n, static_cast<uint64_t>(bound));
}

}  // namespace snoopy
