#include "src/analysis/batch_bound.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/lambert.h"

namespace snoopy {

uint64_t BatchSize(uint64_t num_requests, uint64_t num_suborams, uint32_t lambda) {
  const uint64_t r = num_requests;
  const uint64_t s = std::max<uint64_t>(1, num_suborams);
  if (r == 0) {
    return 0;
  }
  if (s == 1) {
    return r;
  }
  const double mu = static_cast<double>(r) / static_cast<double>(s);
  if (lambda == 0) {
    // No-security mode: expected load, rounded up.
    return static_cast<uint64_t>(std::ceil(mu));
  }
  const double gamma = std::log(static_cast<double>(s)) + static_cast<double>(lambda) * M_LN2;
  const double arg = std::exp(-1.0) * (gamma / mu - 1.0);
  const double w = LambertW0(arg);
  const double bound = mu * std::exp(w + 1.0);
  if (!(bound < static_cast<double>(r))) {
    return r;
  }
  return static_cast<uint64_t>(std::ceil(bound));
}

double OverflowProbLog2(uint64_t num_requests, uint64_t num_suborams, uint64_t batch) {
  const double r = static_cast<double>(num_requests);
  const double s = static_cast<double>(num_suborams);
  if (num_requests == 0 || batch >= num_requests) {
    return -1e9;  // Overflow is impossible.
  }
  const double mu = r / s;
  const double one_plus_delta = static_cast<double>(batch) / mu;
  if (one_plus_delta <= 1.0) {
    return 0.0;  // Bound is vacuous at or below the mean.
  }
  const double delta = one_plus_delta - 1.0;
  // ln Pr <= ln S + mu * (delta - (1+delta) ln(1+delta))
  const double ln_p = std::log(s) + mu * (delta - one_plus_delta * std::log(one_plus_delta));
  return ln_p / M_LN2;
}

double DummyOverheadPercent(uint64_t num_requests, uint64_t num_suborams, uint32_t lambda) {
  if (num_requests == 0) {
    return 0.0;
  }
  const uint64_t b = BatchSize(num_requests, num_suborams, lambda);
  const double total = static_cast<double>(b) * static_cast<double>(num_suborams);
  const double r = static_cast<double>(num_requests);
  return 100.0 * (total - r) / r;
}

uint64_t CapacityForBatchLimit(uint64_t num_suborams, uint64_t batch_limit, uint32_t lambda) {
  const uint64_t s = std::max<uint64_t>(1, num_suborams);
  if (lambda == 0) {
    return s * batch_limit;
  }
  // f(R, S) is non-decreasing in R, so binary search the largest feasible R.
  uint64_t lo = 0;
  uint64_t hi = s * batch_limit + 1;
  while (lo + 1 < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (BatchSize(mid, s, lambda) <= batch_limit) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace snoopy
