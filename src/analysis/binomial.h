// Numerically stable binomial-distribution helpers used to size the two-tier oblivious
// hash table (paper section 5 / Chan et al.). All computations are over public
// parameters; they run once per batch-size configuration.

#ifndef SNOOPY_SRC_ANALYSIS_BINOMIAL_H_
#define SNOOPY_SRC_ANALYSIS_BINOMIAL_H_

#include <cstdint>

namespace snoopy {

// Natural log of the binomial pmf P[X = k] for X ~ Bin(n, p), computed via lgamma.
double LogBinomialPmf(uint64_t n, double p, uint64_t k);

// P[X > k] for X ~ Bin(n, p); exact summation in log space (no Chernoff slack).
double BinomialTailAbove(uint64_t n, double p, uint64_t k);

// E[(X - z)^+] for X ~ Bin(n, p): the expected per-bucket overflow beyond capacity z.
double ExpectedExcess(uint64_t n, double p, uint64_t z);

// Public bound on the total first-tier overflow when n balls are thrown into m bins of
// capacity z, valid except with probability <= 2^-lambda. Uses McDiarmid's bounded-
// difference inequality on the total-overflow function (each ball moves the total by at
// most 1): bound = E[T] + sqrt(n * (lambda * ln2) / 2), capped at n.
uint64_t OverflowBound(uint64_t n, uint64_t m, uint64_t z, uint32_t lambda);

}  // namespace snoopy

#endif  // SNOOPY_SRC_ANALYSIS_BINOMIAL_H_
