#include "src/analysis/lambert.h"

#include <cmath>
#include <limits>

namespace snoopy {

double LambertW0(double x) {
  constexpr double kMinusOneOverE = -0.36787944117144233;
  if (x < kMinusOneOverE - 1e-9) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x <= kMinusOneOverE) {
    return -1.0;
  }
  if (x == 0.0) {
    return 0.0;
  }

  // Initial guess.
  double w;
  if (x < -0.2) {
    // Series around the branch point: W0(-1/e + p^2/2) ~ -1 + p - p^2/3 + ...
    const double p = std::sqrt(2.0 * (std::exp(1.0) * x + 1.0));
    w = -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p;
  } else if (x < 4.0) {
    // Near the origin: Pade-style seed, accurate enough for Halley to take over.
    w = x / (1.0 + x);
  } else {
    // Asymptotic: W0(x) ~ ln(x) - ln(ln(x)).
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    w = l1 - l2 + l2 / l1;
  }

  // Halley iteration on f(w) = w e^w - x.
  for (int iter = 0; iter < 64; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double wp1 = w + 1.0;
    const double denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
    const double dw = f / denom;
    w -= dw;
    if (std::fabs(dw) < 1e-14 * (1.0 + std::fabs(w))) {
      break;
    }
  }
  return w;
}

}  // namespace snoopy
