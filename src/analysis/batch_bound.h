// The Snoopy batch-size bound (paper Theorem 3) and derived capacity/overhead helpers.
//
// Given R distinct requests randomly distributed over S subORAMs, BatchSize returns the
// per-subORAM batch size B = f(R, S) such that the probability any subORAM receives
// more than B requests is at most 2^-lambda. The bound is a Chernoff tail inverted in
// closed form with the Lambert W function:
//
//   mu = R / S,  gamma = ln(S) + lambda * ln(2)
//   f(R, S) = min(R, mu * exp[W0(e^-1 * (gamma/mu - 1)) + 1])
//
// These functions are pure math over public values; they are what Figures 3 and 4 of
// the paper plot, and they size every batch the load balancer emits.

#ifndef SNOOPY_SRC_ANALYSIS_BATCH_BOUND_H_
#define SNOOPY_SRC_ANALYSIS_BATCH_BOUND_H_

#include <cstdint>

namespace snoopy {

// Default security parameter used throughout the paper's evaluation.
inline constexpr uint32_t kDefaultLambda = 128;

// Theorem 3: batch size such that Pr[any subORAM receives > B of the R distinct,
// randomly-distributed requests] <= 2^-lambda. lambda == 0 means "no security": the
// batch is simply the expected load ceil(R / S) (the paper's plaintext line in Fig. 4).
uint64_t BatchSize(uint64_t num_requests, uint64_t num_suborams, uint32_t lambda = kDefaultLambda);

// log2 of the Chernoff upper bound on the overflow probability for batch size `batch`:
// log2( S * (e^delta / (1+delta)^(1+delta))^mu ). Used by tests to verify that
// BatchSize() really achieves <= -lambda, and exposed for analysis tooling.
double OverflowProbLog2(uint64_t num_requests, uint64_t num_suborams, uint64_t batch);

// Percent overhead of dummy requests: 100 * (S * f(R,S) - R) / R (Figure 3).
double DummyOverheadPercent(uint64_t num_requests, uint64_t num_suborams, uint32_t lambda);

// Largest R such that f(R, S) <= per-subORAM capacity `batch_limit` (Figure 4's "real
// request capacity" with batch_limit = 1000).
uint64_t CapacityForBatchLimit(uint64_t num_suborams, uint64_t batch_limit, uint32_t lambda);

}  // namespace snoopy

#endif  // SNOOPY_SRC_ANALYSIS_BATCH_BOUND_H_
